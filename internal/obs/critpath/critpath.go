// Package critpath turns the causal recorder's happens-before graph into
// per-transfer critical paths with stall attribution. Every completed
// message (a MarkDone event — the reader's read_done) is back-walked along
// binding-parent edges to its root (the writer's write_start); because each
// event was recorded at the instant it occurred and its binding parent is
// the latest-finishing dependency, the edge durations telescope exactly:
// the per-cause attribution of a path sums to T(done) − T(root) with no
// residue. Non-binding (slack) edges show how close off-path work came to
// being critical.
package critpath

import (
	"repro/internal/obs"
	"repro/internal/units"
)

// Step is one node of a critical path, in root→done order. Cause and Dur
// describe the edge *arriving* at this event: the time since the previous
// step, attributed to why this event could not have happened earlier. The
// root step has Dur 0.
type Step struct {
	Ev    int32
	Kind  string
	Host  string
	Flow  int
	Off   int64
	Len   int64
	Cause obs.Cause
	T     units.Time
	Dur   units.Time
}

// SlackEdge is a non-binding dependency of an on-path event: From also had
// to finish before To, but did so Slack early. Zero slack means a tie —
// work that is exactly co-critical.
type SlackEdge struct {
	From     int32
	To       int32
	FromKind string
	ToKind   string
	Cause    obs.Cause
	Slack    units.Time
}

// Path is the critical path of one completed transfer.
type Path struct {
	Done    int32
	Kind    string
	Host    string // completion host (the reader)
	Flow    int
	Bytes   int64
	Start   units.Time
	End     units.Time
	Steps   []Step
	ByCause [obs.NumCauses]units.Time
	Slack   []SlackEdge
}

// Total is the path's end-to-end latency, T(done) − T(root). It equals the
// sum of ByCause exactly.
func (p *Path) Total() units.Time { return p.End - p.Start }

// CauseOn sums the path time attributed to cause on edges whose arriving
// event ran on host — e.g. CauseOn("A", obs.CauseCPUCopy) is the sender's
// copy time if the sender is host A.
func (p *Path) CauseOn(host string, c obs.Cause) units.Time {
	var t units.Time
	for _, s := range p.Steps {
		if s.Host == host && s.Cause == c && s.Dur > 0 {
			t += s.Dur
		}
	}
	return t
}

// Report is the analysis of one recorder: every completed transfer's path,
// plus the per-cause totals across all of them.
type Report struct {
	Paths   []Path
	ByCause [obs.NumCauses]units.Time
	Total   units.Time
}

// Analyze extracts the critical path of every completion point in r. Paths
// appear in completion (virtual-time) order. A nil or empty recorder yields
// an empty report.
func Analyze(r *obs.CritRec) *Report {
	rep := &Report{}
	ev := r.Events()
	if len(ev) == 0 {
		return rep
	}
	// Slack edges keyed by their on-path endpoint, preserving record order.
	altTo := make(map[int32][]obs.CritAlt)
	for _, a := range r.Alts() {
		altTo[a.To] = append(altTo[a.To], a)
	}
	for i, e := range ev {
		if !e.Done {
			continue
		}
		rep.Paths = append(rep.Paths, walk(ev, altTo, int32(i+1)))
	}
	for i := range rep.Paths {
		p := &rep.Paths[i]
		for c := obs.Cause(0); c < obs.NumCauses; c++ {
			rep.ByCause[c] += p.ByCause[c]
		}
		rep.Total += p.Total()
	}
	return rep
}

// walk back-walks the binding-parent chain from done to its root and
// reverses it into a Path.
func walk(ev []obs.CritEvent, altTo map[int32][]obs.CritAlt, done int32) Path {
	var rev []int32
	for id := done; id > 0; {
		rev = append(rev, id)
		p := ev[id-1].Parent
		if p >= id {
			// Defensive: parents are always recorded before children; a
			// forward edge would loop.
			break
		}
		id = p
	}
	d := ev[done-1]
	path := Path{
		Done: done, Kind: d.Kind, Host: d.Host, Flow: d.Flow,
		Bytes: d.Len, End: d.T,
	}
	for i := len(rev) - 1; i >= 0; i-- {
		id := rev[i]
		e := ev[id-1]
		s := Step{
			Ev: id, Kind: e.Kind, Host: e.Host, Flow: e.Flow,
			Off: e.Off, Len: e.Len, Cause: e.Cause, T: e.T,
		}
		if i == len(rev)-1 { // root
			path.Start = e.T
		} else {
			prev := ev[rev[i+1]-1]
			s.Dur = e.T - prev.T
			path.ByCause[e.Cause] += s.Dur
			for _, a := range altTo[id] {
				if int(a.From) <= len(ev) {
					path.Slack = append(path.Slack, SlackEdge{
						From: a.From, To: id,
						FromKind: ev[a.From-1].Kind, ToKind: e.Kind,
						Cause: a.Cause, Slack: prev.T - ev[a.From-1].T,
					})
				}
			}
		}
		path.Steps = append(path.Steps, s)
	}
	return path
}

// Last returns the report's final path — the connection-completion path
// (the last message the reader drained) — or nil if none completed.
func (r *Report) Last() *Path {
	if len(r.Paths) == 0 {
		return nil
	}
	return &r.Paths[len(r.Paths)-1]
}

// CauseNs is one cause class's attributed time, for deterministic export
// (cause-index order, zero classes omitted).
type CauseNs struct {
	Cause string `json:"cause"`
	Ns    int64  `json:"ns"`
}

// Causes flattens a per-cause vector in cause-index order, dropping zeros.
func Causes(by [obs.NumCauses]units.Time) []CauseNs {
	out := []CauseNs{}
	for c := obs.Cause(0); c < obs.NumCauses; c++ {
		if by[c] != 0 {
			out = append(out, CauseNs{Cause: c.String(), Ns: int64(by[c])})
		}
	}
	return out
}
