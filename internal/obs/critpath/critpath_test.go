package critpath

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/units"
)

// fakeClock drives a CritRec through scripted instants.
type fakeClock struct{ t units.Time }

func (c *fakeClock) now() units.Time { return c.t }

// TestWalkTelescopes checks the analyzer's core invariant on a hand-built
// graph: per-cause attribution sums exactly to T(done) − T(root), the
// binding (latest) parent is on the path, and the loser shows up as a
// slack edge with the right slack.
func TestWalkTelescopes(t *testing.T) {
	clk := &fakeClock{}
	r := obs.NewCritRec(clk.now)

	clk.t = 100
	root := r.Ev(0, obs.CauseApp, "write_start", "A", 1, 0, 64)
	clk.t = 250
	copyEv := r.Ev(root, obs.CauseCPUCopy, "sock_copy", "A", 1, 0, 64)
	clk.t = 400
	out := r.Ev(copyEv, obs.CauseCPU, "tcp_output", "A", 1, 0, 64)
	// A competing dependency that finished earlier: the previous ACK.
	clk.t = 300
	ack := r.Ev(0, obs.CauseCPU, "ack_in", "A", 1, 0, 0)
	clk.t = 900
	wire := r.Ev(out, obs.CauseWire, "wire_rx", "B", 1, 0, 64)
	clk.t = 1000
	done := r.EvJoin(wire, obs.CauseIntr, ack, obs.CauseAckClock, "read_done", "B", 1, 0, 64)
	r.MarkDone(done)

	rep := Analyze(r)
	if len(rep.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(rep.Paths))
	}
	p := rep.Paths[0]
	if p.Total() != 900 {
		t.Fatalf("total = %v, want 900", p.Total())
	}
	var sum units.Time
	for c := obs.Cause(0); c < obs.NumCauses; c++ {
		sum += p.ByCause[c]
	}
	if sum != p.Total() {
		t.Fatalf("cause sum %v != total %v", sum, p.Total())
	}
	wantSteps := []string{"write_start", "sock_copy", "tcp_output", "wire_rx", "read_done"}
	if len(p.Steps) != len(wantSteps) {
		t.Fatalf("steps = %d, want %d", len(p.Steps), len(wantSteps))
	}
	for i, k := range wantSteps {
		if p.Steps[i].Kind != k {
			t.Errorf("step %d = %s, want %s", i, p.Steps[i].Kind, k)
		}
	}
	if p.ByCause[obs.CauseCPUCopy] != 150 || p.ByCause[obs.CauseWire] != 500 {
		t.Errorf("attribution: copy=%v wire=%v, want 150/500",
			p.ByCause[obs.CauseCPUCopy], p.ByCause[obs.CauseWire])
	}
	// ack (t=300) lost to wire (t=900): slack 600.
	if len(p.Slack) != 1 || p.Slack[0].FromKind != "ack_in" || p.Slack[0].Slack != 600 {
		t.Fatalf("slack = %+v, want ack_in with 600", p.Slack)
	}
}

// TestJoinBindsLater checks that EvJoin binds to the later parent and that
// a tie prefers the primary chain.
func TestJoinBindsLater(t *testing.T) {
	clk := &fakeClock{}
	r := obs.NewCritRec(clk.now)
	clk.t = 10
	a := r.Ev(0, obs.CauseApp, "a", "A", 1, 0, 0)
	clk.t = 20
	b := r.Ev(0, obs.CauseApp, "b", "A", 1, 0, 0)
	clk.t = 30
	j := r.EvJoin(a, obs.CauseCPU, b, obs.CauseQueue, "j", "A", 1, 0, 0)
	if got := r.Events()[j-1]; got.Parent != b || got.Cause != obs.CauseQueue {
		t.Fatalf("join bound to %d/%v, want %d/queue", got.Parent, got.Cause, b)
	}
	// Tie: both parents at t=20 → p1 wins.
	clk.t = 20
	c := r.Ev(0, obs.CauseApp, "c", "A", 1, 0, 0)
	clk.t = 40
	j2 := r.EvJoin(b, obs.CauseCPU, c, obs.CauseQueue, "j2", "A", 1, 0, 0)
	if got := r.Events()[j2-1]; got.Parent != b || got.Cause != obs.CauseCPU {
		t.Fatalf("tie bound to %d/%v, want %d/cpu", got.Parent, got.Cause, b)
	}
	// Joining an event with itself records no self-slack edge.
	clk.t = 50
	j3 := r.EvJoin(j2, obs.CauseCPU, j2, obs.CauseQueue, "j3", "A", 1, 0, 0)
	for _, alt := range r.Alts() {
		if alt.To == j3 {
			t.Fatalf("self-join recorded a slack edge: %+v", alt)
		}
	}
}

// TestNilRecorder checks the disabled path: nil recorder and nil report
// inputs are free no-ops.
func TestNilRecorder(t *testing.T) {
	var r *obs.CritRec
	if id := r.Ev(0, obs.CauseApp, "x", "A", 1, 0, 0); id != 0 {
		t.Fatalf("nil Ev = %d, want 0", id)
	}
	if id := r.EvJoin(1, obs.CauseApp, 2, obs.CauseCPU, "x", "A", 1, 0, 0); id != 0 {
		t.Fatalf("nil EvJoin = %d, want 0", id)
	}
	r.MarkDone(3)
	rep := Analyze(r)
	if len(rep.Paths) != 0 {
		t.Fatalf("nil analyze: %d paths", len(rep.Paths))
	}
	var sb strings.Builder
	rep.WriteText(&sb, true)
	if !strings.Contains(sb.String(), "0 completed transfers") {
		t.Fatalf("empty report text: %q", sb.String())
	}
}

// TestZeroAllocDisabled pins the zero-cost claim: stamping through a nil
// recorder (telemetry off, or crit not enabled) allocates nothing.
func TestZeroAllocDisabled(t *testing.T) {
	var r *obs.CritRec
	allocs := testing.AllocsPerRun(100, func() {
		id := r.Ev(0, obs.CauseApp, "x", "A", 1, 0, 64)
		r.EvJoin(id, obs.CauseApp, 0, obs.CauseCPU, "y", "A", 1, 0, 64)
		r.MarkDone(id)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f/op, want 0", allocs)
	}
	var sp *obs.Span
	allocs = testing.AllocsPerRun(100, func() {
		sp.CritEv(obs.CauseCPU, "x")
		sp.CritEvJoin(obs.CauseCPU, 0, obs.CauseQueue, "y")
		sp.SetCritCur(7)
	})
	if allocs != 0 {
		t.Fatalf("nil span stamping allocates %.1f/op, want 0", allocs)
	}
}

// TestChromeExport sanity-checks the Perfetto export shape.
func TestChromeExport(t *testing.T) {
	clk := &fakeClock{}
	r := obs.NewCritRec(clk.now)
	clk.t = 0
	a := r.Ev(0, obs.CauseApp, "write_start", "A", 1, 0, 8)
	clk.t = 1000
	b := r.Ev(a, obs.CauseWire, "read_done", "B", 1, 0, 8)
	r.MarkDone(b)
	out := string(Analyze(r).ChromeJSON())
	for _, want := range []string{`"traceEvents"`, `"critpath/B"`, `"wire"`, `"done:read_done"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s:\n%s", want, out)
		}
	}
}
