package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestNilSeriesSetIsNoOp(t *testing.T) {
	var ss *SeriesSet
	s := ss.Series("A")
	if s != nil {
		t.Fatal("nil set returned a series")
	}
	s.Level("x", func() int64 { return 1 })
	s.Delta("y", nil)
	s.UtilPerMille("z", nil)
	s.Peak("w", nil)
	ss.Sample(0)
	ss.SetLatencySource(nil)
	if ss.Interval() != 0 {
		t.Fatal("nil set has an interval")
	}
	if snap := ss.Snapshot(); len(snap.Hosts) != 0 {
		t.Fatal("nil set snapshot non-empty")
	}
}

func TestSeriesColumnKinds(t *testing.T) {
	ss := NewSeriesSet(100*units.Microsecond, 8)
	s := ss.Series("A")
	var busy, level int64
	var g Gauge
	s.UtilPerMille("cpu.util_pm", func() int64 { return busy })
	s.Delta("bytes", func() int64 { return level })
	s.Level("pages", func() int64 { return level / 10 })
	s.Peak("q.peak", &g)

	busy, level = 50_000, 100 // half the interval busy
	g.Set(7)
	g.Set(2)
	ss.Sample(100 * units.Microsecond)
	busy, level = 150_000, 250 // fully busy this interval
	g.Set(4)
	ss.Sample(200 * units.Microsecond)

	snap := ss.Snapshot()
	if len(snap.Hosts) != 1 {
		t.Fatalf("hosts = %d", len(snap.Hosts))
	}
	h := snap.Hosts[0]
	wantCols := "cpu.util_pm,bytes,pages,q.peak"
	if strings.Join(h.Columns, ",") != wantCols {
		t.Fatalf("columns = %v", h.Columns)
	}
	if len(h.Samples) != 2 {
		t.Fatalf("samples = %d", len(h.Samples))
	}
	r1, r2 := h.Samples[0], h.Samples[1]
	if r1.TNs != 100_000 || r1.V[0] != 500 || r1.V[1] != 100 || r1.V[2] != 10 || r1.V[3] != 7 {
		t.Fatalf("row1 = %+v", r1)
	}
	// Second interval: util 1000‰, delta 150, peak is 4 (reset dropped 7).
	if r2.V[0] != 1000 || r2.V[1] != 150 || r2.V[3] != 4 {
		t.Fatalf("row2 = %+v", r2)
	}
}

func TestSeriesRingOverwrite(t *testing.T) {
	ss := NewSeriesSet(units.Microsecond, 4)
	s := ss.Series("A")
	i := int64(0)
	s.Level("i", func() int64 { return i })
	for i = 1; i <= 10; i++ {
		ss.Sample(units.Time(i) * units.Microsecond)
	}
	h := ss.Snapshot().Hosts[0]
	if len(h.Samples) != 4 || h.Dropped != 6 {
		t.Fatalf("samples=%d dropped=%d", len(h.Samples), h.Dropped)
	}
	// Oldest-first: values 7..10 survive.
	for k, want := range []int64{7, 8, 9, 10} {
		if h.Samples[k].V[0] != want {
			t.Fatalf("sample %d = %+v, want %d", k, h.Samples[k], want)
		}
	}
}

func TestSeriesEmptySnapshotAndCSV(t *testing.T) {
	// A set with no hosts exports an empty (but well-formed) snapshot.
	ss := NewSeriesSet(10*units.Microsecond, 0)
	snap := ss.Snapshot()
	if len(snap.Hosts) != 0 || len(snap.LatencyQ) != 0 {
		t.Fatalf("empty set snapshot = %+v", snap)
	}
	if csv := snap.CSV(); csv != "" {
		t.Fatalf("empty set CSV = %q, want empty", csv)
	}
	// A registered host that was never sampled still exports its header
	// and column names, with zero rows.
	s := ss.Series("A")
	s.Level("x", func() int64 { return 1 })
	snap = ss.Snapshot()
	if len(snap.Hosts) != 1 || len(snap.Hosts[0].Samples) != 0 || snap.Hosts[0].Dropped != 0 {
		t.Fatalf("unsampled host snapshot = %+v", snap.Hosts)
	}
	if csv := snap.CSV(); csv != "host,t_ns,x\n" {
		t.Fatalf("unsampled host CSV = %q, want header only", csv)
	}
}

func TestSeriesSingleSample(t *testing.T) {
	ss := NewSeriesSet(100*units.Microsecond, 0)
	s := ss.Series("A")
	v := int64(123_456)
	s.Delta("d", func() int64 { return v })
	s.UtilPerMille("u", func() int64 { return 50_000 })
	ss.Sample(100 * units.Microsecond)
	h := ss.Snapshot().Hosts[0]
	if len(h.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(h.Samples))
	}
	// The first delta/util sample is measured against a zero baseline.
	if r := h.Samples[0]; r.TNs != 100_000 || r.V[0] != 123_456 || r.V[1] != 500 {
		t.Fatalf("single row = %+v", r)
	}
	if csv := ss.Snapshot().CSV(); csv != "host,t_ns,d,u\nA,100000,123456,500\n" {
		t.Fatalf("single-row CSV = %q", csv)
	}
}

func TestSeriesPeakIntervalReset(t *testing.T) {
	// KindPeak reads the gauge's interval high-water and Resets it, so each
	// interval reports its own peak — and the reset floor is the *current*
	// level, not zero (a level that persists across the tick is still the
	// peak of the next window).
	ss := NewSeriesSet(10*units.Microsecond, 0)
	s := ss.Series("A")
	var g Gauge
	s.Peak("p", &g)

	g.Set(9)
	g.Set(3)
	ss.Sample(10 * units.Microsecond) // interval peak 9, resets floor to 3
	ss.Sample(20 * units.Microsecond) // nothing set: floor carries as peak
	g.Set(5)
	g.Set(1)
	ss.Sample(30 * units.Microsecond)
	h := ss.Snapshot().Hosts[0]
	want := []int64{9, 3, 5}
	for i, w := range want {
		if h.Samples[i].V[0] != w {
			t.Fatalf("peak rows = %v, want %v", h.Samples, want)
		}
	}
	if g.HighWater() != 9 {
		t.Fatalf("all-time high water = %d, want 9 (Reset must not clear it)", g.HighWater())
	}
}

func TestSeriesSnapshotDeterministicAndCSV(t *testing.T) {
	mk := func() SeriesSnapshot {
		ss := NewSeriesSet(10*units.Microsecond, 0)
		var h Histogram
		for k := 0; k < 10; k++ {
			h.Observe(units.Time(k+1) * units.Microsecond)
		}
		ss.SetLatencySource(&h)
		for _, host := range []string{"A", "B"} {
			s := ss.Series(host)
			v := int64(len(host))
			s.Level("x", func() int64 { return v })
		}
		ss.Sample(10 * units.Microsecond)
		ss.Sample(20 * units.Microsecond)
		return ss.Snapshot()
	}
	s1, s2 := mk(), mk()
	if !bytes.Equal(s1.JSON(), s2.JSON()) {
		t.Fatal("series JSON not deterministic")
	}
	if len(s1.LatencyQ) != 3 || s1.LatencyQ[0].P != 0.5 || s1.LatencyQ[0].Ns <= 0 {
		t.Fatalf("latency quantiles = %+v", s1.LatencyQ)
	}
	csv := s1.CSV()
	if !strings.HasPrefix(csv, "host,t_ns,x\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
	if !strings.Contains(csv, "A,10000,1\n") || !strings.Contains(csv, "B,20000,1\n") {
		t.Fatalf("csv rows:\n%s", csv)
	}
}
