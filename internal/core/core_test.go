package core

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 5001
)

// twoHosts builds a sender/receiver pair over the CAB in the given mode.
func twoHosts(mode socket.Mode) (*Testbed, *Host, *Host) {
	tb := NewTestbed(1)
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: mode, CABNode: 1})
	b := tb.AddHost(HostConfig{Name: "B", Addr: addrB, Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	return tb, a, b
}

// pattern fills b with a position-dependent pattern.
func pattern(b []byte, seed byte) {
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
}

// transfer runs a bulk transfer of total bytes in writeSize units from a
// to b and returns the received bytes.
func transfer(t *testing.T, tb *Testbed, a, b *Host, total, writeSize units.Size) []byte {
	t.Helper()
	var received []byte
	lis := b.Stk.Listen(port)

	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(256*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				received = append(received, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})

	st := a.NewUserTask("snd", 2*writeSize+16*units.MB)
	tb.Eng.Go("sender", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := st.Space.Alloc(writeSize, 8)
		for sent := units.Size(0); sent < total; sent += writeSize {
			pattern(buf.Bytes(), byte(sent/writeSize))
			if err := s.WriteAll(p, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		s.Close(p)
	})

	tb.Eng.Run()
	tb.Eng.KillAll()
	return received
}

// wantPattern builds the expected stream.
func wantPattern(total, writeSize units.Size) []byte {
	out := make([]byte, 0, total)
	chunk := make([]byte, writeSize)
	for sent := units.Size(0); sent < total; sent += writeSize {
		pattern(chunk, byte(sent/writeSize))
		out = append(out, chunk...)
	}
	return out
}

func TestEndToEndSingleCopy(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	total, ws := units.Size(2*units.MB), units.Size(64*units.KB)
	got := transfer(t, tb, a, b, total, ws)
	if units.Size(len(got)) != total {
		t.Fatalf("received %d bytes, want %d", len(got), total)
	}
	if !bytes.Equal(got, wantPattern(total, ws)) {
		t.Fatal("data corrupted in transit")
	}
	// The single-copy path must actually have been used.
	if b.Stk.Stats.HWCsumVerified == 0 {
		t.Fatal("no hardware checksum verifications on receiver")
	}
	if b.Drv.Stats.RxLarge == 0 {
		t.Fatal("no WCAB (outboard) receive deliveries")
	}
	if a.Stk.Stats.TCPRetransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", a.Stk.Stats.TCPRetransmits)
	}
	// No leaks: network memory drained, no pinned user pages.
	if a.CAB.FreePages() != a.CAB.TotalPages() {
		t.Fatalf("sender CAB leaked pages: %d of %d free",
			a.CAB.FreePages(), a.CAB.TotalPages())
	}
	if b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatalf("receiver CAB leaked pages: %d of %d free",
			b.CAB.FreePages(), b.CAB.TotalPages())
	}
}

func TestEndToEndUnmodified(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeUnmodified)
	total, ws := units.Size(1*units.MB), units.Size(64*units.KB)
	got := transfer(t, tb, a, b, total, ws)
	if !bytes.Equal(got, wantPattern(total, ws)) {
		t.Fatal("data corrupted in transit")
	}
	// The unmodified stack verifies checksums in software and never sees
	// descriptors.
	if b.Stk.Stats.HWCsumVerified != 0 {
		t.Fatal("unmodified stack should not use hardware checksums")
	}
	if b.Stk.Stats.SWCsumVerified == 0 {
		t.Fatal("no software checksum verifications")
	}
	if a.CAB.FreePages() != a.CAB.TotalPages() || b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("CAB pages leaked")
	}
}

func TestSingleCopyUsesLessCPU(t *testing.T) {
	run := func(mode socket.Mode) units.Time {
		tb, a, b := twoHosts(mode)
		total, ws := units.Size(4*units.MB), units.Size(128*units.KB)
		got := transfer(t, tb, a, b, total, ws)
		if units.Size(len(got)) != total {
			t.Fatalf("mode %v: received %d of %d", mode, len(got), total)
		}
		return a.K.BusyTime() + b.K.BusyTime()
	}
	unmod := run(socket.ModeUnmodified)
	single := run(socket.ModeSingleCopy)
	if single >= unmod {
		t.Fatalf("single-copy CPU (%v) should be well below unmodified (%v)", single, unmod)
	}
	ratio := float64(unmod) / float64(single)
	if ratio < 1.5 {
		t.Fatalf("CPU saving ratio = %.2f, want ≥ 1.5", ratio)
	}
	t.Logf("CPU busy: unmodified=%v single-copy=%v (ratio %.2f)", unmod, single, ratio)
}

func TestRetransmissionUnderLoss(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	// Drop every 13th data-bearing frame (let the handshake through).
	inj := fault.New(tb.Eng, 1)
	inj.Add(fault.Rule{Kind: fault.Drop, When: fault.Every(13), MinLen: 200})
	inj.WireNet(tb.Net)
	total, ws := units.Size(2*units.MB), units.Size(64*units.KB)
	got := transfer(t, tb, a, b, total, ws)
	if !bytes.Equal(got, wantPattern(total, ws)) {
		t.Fatalf("data corrupted under loss (got %d bytes, want %d)", len(got), total)
	}
	if a.Stk.Stats.TCPRetransmits == 0 {
		t.Fatal("expected retransmissions under loss")
	}
	// Retransmissions of outboard data should use header-only overlays.
	if a.Drv.Stats.TxOverlays == 0 {
		t.Fatal("expected header-only retransmit overlays (Section 4.3)")
	}
	if a.CAB.FreePages() != a.CAB.TotalPages() || b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("CAB pages leaked under loss")
	}
}

func TestSmallWritesUseCopyPathWithThreshold(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(64*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	var sock *socket.Socket
	tb.Eng.Go("sender", func(p *sim.Proc) {
		cfg := a.SocketConfig()
		cfg.UIOThreshold = 16 * units.KB // Section 4.4.3 optimization
		conn, err := a.Stk.Connect(a.K.TaskCtx(p, st), addrB, port)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		sock = socket.NewSocket(a.K, a.VM, st, conn, cfg)
		small := st.Space.Alloc(4*units.KB, 8)
		large := st.Space.Alloc(64*units.KB, 8)
		pattern(small.Bytes(), 1)
		pattern(large.Bytes(), 2)
		sock.WriteAll(p, small)
		sock.WriteAll(p, large)
		sock.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if units.Size(len(got)) != 68*units.KB {
		t.Fatalf("received %d bytes", len(got))
	}
	if sock.CopyWrites != 1 || sock.UIOWrites != 1 {
		t.Fatalf("copy/UIO writes = %d/%d, want 1/1", sock.CopyWrites, sock.UIOWrites)
	}
}

func TestUnalignedWriteFallsBack(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(128*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	var sock *socket.Socket
	tb.Eng.Go("sender", func(p *sim.Proc) {
		var err error
		sock, err = a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// A 2-byte misaligned buffer cannot be DMAed (Section 4.5).
		buf := st.Space.AllocMisaligned(64*units.KB, 2)
		pattern(buf.Bytes(), 7)
		sock.WriteAll(p, buf)
		sock.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if units.Size(len(got)) != 64*units.KB {
		t.Fatalf("received %d bytes", len(got))
	}
	want := make([]byte, 64*units.KB)
	pattern(want, 7)
	if !bytes.Equal(got, want) {
		t.Fatal("unaligned data corrupted")
	}
	if sock.UIOWrites != 0 || sock.CopyWrites != 1 {
		t.Fatalf("UIO/copy writes = %d/%d, want 0/1", sock.UIOWrites, sock.CopyWrites)
	}
}

func TestTransferOverEthernetInterop(t *testing.T) {
	// Single-copy stack hosts talking over a legacy device: the socket
	// layer still creates UIO mbufs; the driver-entry shim converts them
	// (Section 5).
	tb := NewTestbed(1)
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1, EthNode: 11})
	b := tb.AddHost(HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2, EthNode: 12})
	tb.RouteEth(a, b)
	total, ws := units.Size(256*units.KB), units.Size(32*units.KB)
	got := transfer(t, tb, a, b, total, ws)
	if !bytes.Equal(got, wantPattern(total, ws)) {
		t.Fatal("data corrupted over legacy device")
	}
	if a.Eth.Converted == 0 {
		t.Fatal("expected driver-entry descriptor conversions")
	}
	if b.Stk.Stats.HWCsumVerified != 0 {
		t.Fatal("legacy device cannot provide hardware checksums")
	}
}

func TestLoopback(t *testing.T) {
	tb := NewTestbed(1)
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1, Loopback: true})
	lis := a.Stk.Listen(port)
	var got []byte
	rt := a.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := a.Accept(p, rt, lis)
		buf := rt.Space.Alloc(32*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("sender", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrA, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := st.Space.Alloc(32*units.KB, 8)
		pattern(buf.Bytes(), 9)
		s.WriteAll(p, buf)
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	want := make([]byte, 32*units.KB)
	pattern(want, 9)
	if !bytes.Equal(got, want) {
		t.Fatalf("loopback data mismatch (%d bytes)", len(got))
	}
}

func TestUDPTransfer(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	var got [][]byte
	rt := b.NewUserTask("rcv", 0)
	rx := socket.MustDGram(b.K, b.VM, rt, b.Stk, 7000, b.SocketConfig())
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		buf := rt.Space.Alloc(32*units.KB, 8)
		for i := 0; i < 8; i++ {
			n, _, _ := rx.RecvFrom(p, buf)
			cp := make([]byte, n)
			copy(cp, buf.Bytes())
			got = append(got, cp)
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("sender", func(p *sim.Proc) {
		tx := socket.MustDGram(a.K, a.VM, st, a.Stk, 0, a.SocketConfig())
		buf := st.Space.Alloc(16*units.KB, 8)
		for i := 0; i < 8; i++ {
			pattern(buf.Bytes(), byte(i))
			tx.SendTo(p, buf, addrB, 7000)
		}
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if len(got) != 8 {
		t.Fatalf("received %d datagrams, want 8", len(got))
	}
	want := make([]byte, 16*units.KB)
	for i, g := range got {
		pattern(want, byte(i))
		if !bytes.Equal(g, want) {
			t.Fatalf("datagram %d corrupted", i)
		}
	}
	// UDP outboard packets are freed after the media send.
	if a.CAB.FreePages() != a.CAB.TotalPages() {
		t.Fatal("sender CAB pages leaked (UDP should free after send)")
	}
}
