package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cab"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

// TestTinyNetworkMemoryRecovers starves the receiver's CAB of network
// memory so arriving packets are held on the link (bounded backpressure)
// or, past the hold bound, dropped; the stream must survive intact and
// small frames must keep flowing via direct delivery.
func TestTinyNetworkMemoryRecovers(t *testing.T) {
	tb := NewTestbed(50)
	small := cab.DefaultConfig()
	small.MemSize = 256 * units.KB // 32 pages: less than one window
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2,
		CABConfig: &small})
	tb.RouteCAB(a, b)
	total, ws := units.Size(1*units.MB), units.Size(64*units.KB)

	// A slow reader lets arriving packets accumulate in the starved
	// network memory.
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(ws, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
			p.Sleep(5 * units.Millisecond)
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("sender", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := st.Space.Alloc(ws, 8)
		for sent := units.Size(0); sent < total; sent += ws {
			pattern(buf.Bytes(), byte(sent/ws))
			if err := s.WriteAll(p, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if !bytes.Equal(got, wantPattern(total, ws)) {
		t.Fatalf("data corrupted with starved network memory (got %d)", len(got))
	}
	if b.CAB.Stats.RxRetries == 0 {
		t.Fatal("vacuous: receiver never ran out of network memory")
	}
	if b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("pages leaked under memory pressure")
	}
}

// TestRxHoldRetryPreservesProvenance pins the ledger attribution of the
// CAB's hold-and-retry receive path: a frame held on the link under memory
// pressure carries its *Prov by value in heldRx, and the SDMA touches
// recorded after the retry finally admits it must still map to stream
// bytes. A regression that drops the provenance in the hold queue turns
// every retried frame's delivery into unattributed bytes, which shows up
// as zero-count gaps in the receiver's per-byte coverage.
func TestRxHoldRetryPreservesProvenance(t *testing.T) {
	tb := NewTestbed(50)
	tb.EnableLedger()
	small := cab.DefaultConfig()
	small.MemSize = 256 * units.KB // 32 pages: less than one window
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2,
		CABConfig: &small})
	tb.RouteCAB(a, b)
	total, ws := units.Size(1*units.MB), units.Size(64*units.KB)

	lis := b.Stk.Listen(port)
	var got units.Size
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("receiver", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(ws, 8)
		for {
			n, err := s.Read(p, buf)
			got += n
			if err != nil {
				return
			}
			p.Sleep(5 * units.Millisecond)
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("sender", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := st.Space.Alloc(ws, 8)
		for sent := units.Size(0); sent < total; sent += ws {
			if err := s.WriteAll(p, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	if got != total {
		t.Fatalf("delivered %v of %v", got, total)
	}
	if b.CAB.Stats.RxRetries == 0 {
		t.Fatal("vacuous: no frame was ever held and retried")
	}
	led := tb.Led
	flow := led.MainFlow()
	// Delivery conservation with attribution: every stream byte reached
	// host B via a *flow-attributed* DMA (or the documented recovery
	// copy-out). Lost provenance in heldRx would leave the retried frames'
	// byte ranges uncovered.
	audit := led.Audit(flow, total)
	for _, tc := range audit.PerByte(func(r ledger.Record) bool {
		return r.Host == "B" && (r.Kind == ledger.SDMAToHost || r.Kind == ledger.CPUCopy)
	}) {
		if tc.N == 0 {
			t.Fatalf("bytes [%d,%d) were delivered with no attributed record: provenance lost across the rx-hold retry",
				int64(tc.Off), int64(tc.Off+tc.Len))
		}
	}
	// The full single-copy oracle must still certify the run (loose mode:
	// memory-pressure drops force retransmissions).
	if err := led.AssertSingleCopy(ledger.AuditConfig{
		Flow: flow, Total: total, SndHost: "A", RcvHost: "B",
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFullDuplexTransfer runs simultaneous transfers in both directions
// over one connection pair (two connections, one per direction), sharing
// the CABs and links.
func TestFullDuplexTransfer(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	const total = 1 * units.MB
	const ws = 64 * units.KB

	run := func(from, to *Host, dst wire.Addr, prt uint16, seed byte, out *[]byte) {
		lis := to.Stk.Listen(prt)
		rt := to.NewUserTask("rcv", 0)
		tb.Eng.Go("rcv", func(p *sim.Proc) {
			s := to.Accept(p, rt, lis)
			buf := rt.Space.Alloc(ws, 8)
			for {
				n, err := s.Read(p, buf)
				if n > 0 {
					*out = append(*out, buf.Slice(0, n).Bytes()...)
				}
				if err != nil {
					return
				}
			}
		})
		st := from.NewUserTask("snd", 0)
		tb.Eng.Go("snd", func(p *sim.Proc) {
			s, err := from.Dial(p, st, dst, prt)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			buf := st.Space.Alloc(ws, 8)
			for sent := units.Size(0); sent < total; sent += ws {
				pattern(buf.Bytes(), seed)
				if err := s.WriteAll(p, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
			s.Close(p)
		})
	}

	var ab, ba []byte
	run(a, b, addrB, 6001, 1, &ab)
	run(b, a, addrA, 6002, 2, &ba)
	tb.Eng.Run()
	tb.Eng.KillAll()

	for _, x := range []struct {
		name string
		got  []byte
		seed byte
	}{{"A→B", ab, 1}, {"B→A", ba, 2}} {
		if units.Size(len(x.got)) != total {
			t.Fatalf("%s: got %d bytes", x.name, len(x.got))
		}
		want := make([]byte, ws)
		pattern(want, x.seed)
		for off := 0; off < len(x.got); off += int(ws) {
			if !bytes.Equal(x.got[off:off+int(ws)], want) {
				t.Fatalf("%s: corrupted at offset %d", x.name, off)
			}
		}
	}
	if a.CAB.FreePages() != a.CAB.TotalPages() || b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("full-duplex leaked network memory")
	}
}

// TestManyConcurrentConnections multiplexes several streams over one CAB
// pair; each stream must arrive intact and in order.
func TestManyConcurrentConnections(t *testing.T) {
	tb, a, b := twoHosts(socket.ModeSingleCopy)
	const conns = 6
	const total = 512 * units.KB
	const ws = 32 * units.KB

	results := make([][]byte, conns)
	for i := 0; i < conns; i++ {
		i := i
		prt := uint16(7000 + i)
		lis := b.Stk.Listen(prt)
		rt := b.NewUserTask("rcv", 0)
		tb.Eng.Go("rcv", func(p *sim.Proc) {
			s := b.Accept(p, rt, lis)
			buf := rt.Space.Alloc(ws, 8)
			for {
				n, err := s.Read(p, buf)
				if n > 0 {
					results[i] = append(results[i], buf.Slice(0, n).Bytes()...)
				}
				if err != nil {
					return
				}
			}
		})
		st := a.NewUserTask("snd", 0)
		tb.Eng.Go("snd", func(p *sim.Proc) {
			s, err := a.Dial(p, st, addrB, prt)
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			buf := st.Space.Alloc(ws, 8)
			for sent := units.Size(0); sent < total; sent += ws {
				pattern(buf.Bytes(), byte(i*16)+byte(sent/ws))
				if err := s.WriteAll(p, buf); err != nil {
					t.Errorf("write %d: %v", i, err)
					return
				}
			}
			s.Close(p)
		})
	}
	tb.Eng.Run()
	tb.Eng.KillAll()

	for i := 0; i < conns; i++ {
		if units.Size(len(results[i])) != total {
			t.Fatalf("conn %d: got %d bytes", i, len(results[i]))
		}
		chunk := make([]byte, ws)
		for sent := units.Size(0); sent < total; sent += ws {
			pattern(chunk, byte(i*16)+byte(sent/ws))
			if !bytes.Equal(results[i][sent:sent+ws], chunk) {
				t.Fatalf("conn %d corrupted at %v", i, sent)
			}
		}
	}
	if a.CAB.FreePages() != a.CAB.TotalPages() || b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("concurrent connections leaked network memory")
	}
}

// TestRandomizedStreamProperty is an end-to-end property test: random
// write sizes (aligned and not), random read sizes, random loss, both
// stack modes — the byte stream must always arrive complete, in order,
// and uncorrupted, and all resources must drain.
func TestRandomizedStreamProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		mode := socket.ModeSingleCopy
		if trial%2 == 1 {
			mode = socket.ModeUnmodified
		}
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		tb, a, b := twoHosts(mode)
		if trial >= 4 {
			inj := fault.New(tb.Eng, int64(100+trial))
			inj.Add(fault.Rule{Kind: fault.Drop, When: fault.Every(11), MinLen: 1000})
			inj.WireNet(tb.Net)
		}

		// Build a random schedule of writes.
		var writes []units.Size
		var total units.Size
		for total < 1*units.MB {
			w := units.Size(1 + rng.Intn(96*1024))
			writes = append(writes, w)
			total += w
		}
		want := make([]byte, total)
		rng.Read(want)

		lis := b.Stk.Listen(port)
		var got []byte
		rt := b.NewUserTask("rcv", 0)
		tb.Eng.Go("rcv", func(p *sim.Proc) {
			s := b.Accept(p, rt, lis)
			rrng := rand.New(rand.NewSource(int64(trial)))
			for {
				sz := units.Size(1 + rrng.Intn(128*1024))
				buf := rt.Space.Alloc(sz, 8)
				n, err := s.Read(p, buf)
				if n > 0 {
					got = append(got, buf.Slice(0, n).Bytes()...)
				}
				if err != nil {
					return
				}
			}
		})
		st := a.NewUserTask("snd", 32*units.MB)
		tb.Eng.Go("snd", func(p *sim.Proc) {
			s, err := a.Dial(p, st, addrB, port)
			if err != nil {
				t.Errorf("trial %d dial: %v", trial, err)
				return
			}
			off := units.Size(0)
			for _, w := range writes {
				var buf = st.Space.Alloc(w, 8)
				if w > 2 && rng.Intn(3) == 0 {
					// Occasionally misaligned.
					buf = st.Space.AllocMisaligned(w, units.Size(1+rng.Intn(3)))
				}
				copy(buf.Bytes(), want[off:off+w])
				if err := s.WriteAll(p, buf); err != nil {
					t.Errorf("trial %d write: %v", trial, err)
					return
				}
				off += w
			}
			s.Close(p)
		})
		tb.Eng.Run()
		tb.Eng.KillAll()

		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (mode %v): stream mismatch got %d want %d bytes",
				trial, mode, len(got), len(want))
		}
		if a.CAB.FreePages() != a.CAB.TotalPages() || b.CAB.FreePages() != b.CAB.TotalPages() {
			t.Fatalf("trial %d: network memory leaked", trial)
		}
		if st.Space.PinnedPages() != 0 || rt.Space.PinnedPages() != 0 {
			t.Fatalf("trial %d: pinned pages leaked", trial)
		}
	}
}

// TestFragmentedUDPOverCABCombinesHardwareChecksums forces UDP
// fragmentation over the CAB (by shrinking the CAB MTU): fragments of the
// single-copy datagram are DMAed symbolically from user pages, and the
// receiver verifies the reassembled datagram by combining the per-fragment
// hardware checksum sums — the host never reads the payload.
func TestFragmentedUDPOverCABCombinesHardwareChecksums(t *testing.T) {
	tb := NewTestbed(55)
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeSingleCopy, CABNode: 1})
	b := tb.AddHost(HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeSingleCopy, CABNode: 2})
	tb.RouteCAB(a, b)
	// Shrink the MTU so a 48KB datagram fragments.
	a.Drv.SetMTU(8 * units.KB)
	b.Drv.SetMTU(8 * units.KB)

	const n = 48 * units.KB
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	rx := socket.MustDGram(b.K, b.VM, rt, b.Stk, 9000, b.SocketConfig())
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		buf := rt.Space.Alloc(n, 8)
		m, _, _ := rx.RecvFrom(p, buf)
		got = append(got, buf.Slice(0, m).Bytes()...)
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		tx := socket.MustDGram(a.K, a.VM, st, a.Stk, 0, a.SocketConfig())
		buf := st.Space.Alloc(n, 8)
		pattern(buf.Bytes(), 77)
		tx.SendTo(p, buf, addrB, 9000)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	want := make([]byte, n)
	pattern(want, 77)
	if !bytes.Equal(got, want) {
		t.Fatalf("fragmented datagram corrupted (%d bytes)", len(got))
	}
	if a.Stk.Stats.IPFragsOut < 6 {
		t.Fatalf("fragments out = %d", a.Stk.Stats.IPFragsOut)
	}
	if b.Stk.Stats.IPReassembled != 1 {
		t.Fatalf("reassembled = %d", b.Stk.Stats.IPReassembled)
	}
	// The reassembled verification used combined hardware sums, not a
	// software read.
	if b.Stk.Stats.HWCsumVerified == 0 || b.Stk.Stats.SWCsumVerified != 0 {
		t.Fatalf("hw=%d sw=%d; want hardware-combined verification",
			b.Stk.Stats.HWCsumVerified, b.Stk.Stats.SWCsumVerified)
	}
	if b.K.CategoryTime(kern.CatCsum) != 0 {
		t.Fatal("receiver burned CPU on checksumming despite hardware sums")
	}
	if a.CAB.FreePages() != a.CAB.TotalPages() || b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("network memory leaked")
	}
}
