// Package core assembles complete simulated hosts — kernel, VM, protocol
// stack, CAB adaptor and driver, optional legacy Ethernet and loopback
// devices — into a testbed, and is the primary entry point for running the
// paper's configurations: the unmodified stack versus the single-copy
// stack over the Gigabit Nectar CAB (Figure 2).
package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/cab"
	"repro/internal/cabdrv"
	"repro/internal/cost"
	"repro/internal/ethdev"
	"repro/internal/fault"
	"repro/internal/hippi"
	"repro/internal/kern"
	"repro/internal/loop"
	"repro/internal/mem"
	"repro/internal/netif"
	"repro/internal/obs"
	"repro/internal/obs/engine"
	"repro/internal/obs/ledger"
	"repro/internal/obs/netobs"
	"repro/internal/obs/prof"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/tcpip"
	"repro/internal/units"
	"repro/internal/wire"
)

// HostConfig describes one host to add to a testbed.
type HostConfig struct {
	Name string
	Addr wire.Addr
	// Mach is the cost model; nil defaults to the Alpha 3000/400.
	Mach *cost.Machine
	// Mode selects the stack variant.
	Mode socket.Mode
	// CABNode is the host's HIPPI switch port.
	CABNode hippi.NodeID
	// CABConfig overrides the adaptor configuration (zero value: default).
	CABConfig *cab.Config
	// Arbiter, if set, installs a per-flow netmem arbiter on the host's
	// CAB with this configuration (zero value: arbiter defaults). Nil
	// keeps the seed first-come global allocation policy.
	Arbiter *cab.ArbConfig
	// NoDriver attaches the CAB hardware without the protocol driver
	// (raw-HIPPI measurement harnesses drive the adaptor directly).
	NoDriver bool
	// EthNode, if non-zero, also attaches a legacy Ethernet-class device
	// at that station id on the testbed's legacy medium.
	EthNode hippi.NodeID
	// Loopback attaches a loopback interface.
	Loopback bool
	// LazyUnpin enables the pinned-buffer reuse cache (Section 4.4.1
	// extension).
	LazyUnpin bool
	// CC selects the host's TCP congestion-control policy: "" or "reno"
	// for the classic 4.3BSD-Reno behavior, "dctcp" for the ECN-reacting
	// variant (needs a fabric with CE marking enabled to differ).
	CC string
	// MTU overrides the CAB interface's network-layer MTU (0: the default
	// 32 KByte paper MTU). Fabric scenarios use a smaller MTU so DCTCP's
	// two-segment cwnd floor sits below a fair per-flow share.
	MTU units.Size
}

// Host is one assembled host.
type Host struct {
	Name string
	Cfg  HostConfig
	K    *kern.Kernel
	VM   *kern.VM
	Stk  *tcpip.Stack
	CAB  *cab.CAB
	Drv  *cabdrv.Driver
	Eth  *ethdev.Driver
	Lo   *loop.Loopback
}

// Testbed is a set of hosts joined by a HIPPI switch (and optionally a
// slower legacy medium).
type Testbed struct {
	Eng    *sim.Engine
	Net    *hippi.Network
	EthNet *hippi.Network
	Hosts  []*Host
	// Tel is the testbed-wide telemetry hub; nil unless EnableTelemetry
	// was called before hosts were added.
	Tel *obs.Telemetry
	// Prof is the virtual-time CPU profiler; nil unless EnableProfiling
	// was called before hosts were added.
	Prof *prof.Profiler
	// Series is the utilization time-series sampler; nil unless
	// EnableSeries was called before hosts were added.
	Series *obs.SeriesSet
	// FaultInj is the fault injector; nil unless EnableFaults was called
	// before hosts were added.
	FaultInj *fault.Injector
	// Led is the data-touch ledger; nil unless EnableLedger was called
	// before hosts were added.
	Led *ledger.Ledger
	// EngObs is the simulator meta-observer (wall-clock engine counters);
	// nil unless EnableEngineObs was called before hosts were added.
	EngObs *engine.Observer
	// NetObs is the transport-dynamics recorder; nil unless EnableNetObs
	// was called before hosts were added.
	NetObs *netobs.Recorder

	seriesStop bool
}

// EthRate is the legacy medium's line rate (FDDI-class, so the legacy
// device rather than the wire dominates in interop tests).
const EthRate = 100 * units.Mbps

// NewTestbed creates an empty testbed with a HIPPI switch.
func NewTestbed(seed int64) *Testbed {
	eng := sim.NewEngine(seed)
	return &Testbed{
		Eng:    eng,
		Net:    hippi.NewNetwork(eng, hippi.LineRate, 5*units.Microsecond),
		EthNet: hippi.NewNetwork(eng, EthRate, 50*units.Microsecond),
	}
}

// EnableTelemetry turns on metrics and data-path tracing for every host
// added afterwards. It must run before AddHost so subsystem constructors
// can register their instruments.
func (tb *Testbed) EnableTelemetry() *obs.Telemetry {
	if len(tb.Hosts) > 0 {
		panic("core: EnableTelemetry must be called before AddHost")
	}
	if tb.Tel == nil {
		tb.Tel = obs.New(tb.Eng.Now)
		r := tb.Tel.Registry("net")
		tb.Net.SetObs(r, "hippi")
		tb.EthNet.SetObs(r, "eth")
	}
	return tb.Tel
}

// EnableCritPath turns on the causal critical-path recorder: data-path
// spans of every host added afterwards record happens-before events
// (writer enqueue, tcp_output, SDMA, wire, interrupt, read wakeup) with
// stall-cause edges, for the internal/obs/critpath analyzer. Implies
// EnableTelemetry; must run before AddHost.
func (tb *Testbed) EnableCritPath() *obs.CritRec {
	if len(tb.Hosts) > 0 {
		panic("core: EnableCritPath must be called before AddHost")
	}
	tb.EnableTelemetry()
	tb.Tel.EnableCritPath()
	return tb.Tel.Crit()
}

// EnableProfiling turns on the virtual-time CPU profiler for every host
// added afterwards: all kernel CPU charges are attributed to a
// (host, layer-stack, category, flow) node, exactly — no sampling. It
// must run before AddHost so hosts get their profile roots.
func (tb *Testbed) EnableProfiling() *prof.Profiler {
	if len(tb.Hosts) > 0 {
		panic("core: EnableProfiling must be called before AddHost")
	}
	if tb.Prof == nil {
		tb.Prof = prof.New(kern.CategoryNames())
	}
	return tb.Prof
}

// EnableSeries turns on the utilization time-series sampler: every
// interval of virtual time each host records CPU utilization (total and
// per category, in per-mille), network-memory page occupancy, and TCP
// queue/window high-water marks. Implies EnableTelemetry; must run before
// AddHost. The sampler keeps an engine event pending, so call StopSeries
// when the workload ends or Eng.Run will not return.
func (tb *Testbed) EnableSeries(interval units.Time) *obs.SeriesSet {
	if len(tb.Hosts) > 0 {
		panic("core: EnableSeries must be called before AddHost")
	}
	if interval <= 0 {
		interval = 100 * units.Microsecond
	}
	tb.EnableTelemetry()
	if tb.Series == nil {
		tb.Series = obs.NewSeriesSet(interval, obs.DefaultSeriesCapacity)
		tb.Series.SetLatencySource(tb.Tel.Trace().Latency())
		tb.Eng.Go("series-sampler", func(p *sim.Proc) {
			for !tb.seriesStop {
				p.Sleep(interval)
				tb.Series.Sample(p.Now())
			}
		})
	}
	return tb.Series
}

// EnableNetObs turns on the transport-dynamics observatory for every host
// added afterwards: per-connection TCP congestion-state series sampled on
// state change, per-port wire busy/stall telemetry with per-flow
// bytes-on-wire attribution, and the postmortem analyzer joining the two
// with adaptor-memory stats (see NetObsPostmortem). Purely observational:
// it charges no simulated time and leaves run timing byte-identical. Must
// run before AddHost.
func (tb *Testbed) EnableNetObs() *netobs.Recorder {
	if len(tb.Hosts) > 0 {
		panic("core: EnableNetObs must be called before AddHost")
	}
	if tb.NetObs == nil {
		tb.NetObs = netobs.New(tb.Eng.Now)
		tb.Net.SetNetObs(tb.NetObs.Wire("hippi", 0))
		tb.EthNet.SetNetObs(tb.NetObs.Wire("eth", 0))
	}
	return tb.NetObs
}

// NetObsPostmortem runs the transport-dynamics analyzer over everything the
// recorder saw, joining each flow's series with the wire telemetry and the
// receiving host's adaptor-memory stats. after excludes warmup events from
// the verdict rules. Returns nil when netobs is disabled.
func (tb *Testbed) NetObsPostmortem(after units.Time) *netobs.Postmortem {
	if tb.NetObs == nil {
		return nil
	}
	mem := make([]netobs.HostMem, 0, len(tb.Hosts))
	for _, h := range tb.Hosts {
		st := &h.CAB.Stats
		mem = append(mem, netobs.HostMem{
			Host:        h.Name,
			Node:        int(h.Cfg.CABNode),
			DropNoMem:   int64(st.DropNoMem),
			DropNoBuf:   int64(st.DropNoBuf),
			RxRetries:   int64(st.RxRetries),
			ArbWaits:    int64(st.ArbWaits),
			ArbBorrows:  int64(st.ArbBorrows),
			ArbReclaims: int64(st.ArbReclaims),
		})
	}
	return tb.NetObs.Analyze(mem, netobs.Options{After: after})
}

// StopSeries retires the sampler: it takes one final row at the next tick
// and exits, letting Eng.Run drain. Harmless when series are disabled.
func (tb *Testbed) StopSeries() { tb.seriesStop = true }

// EnableLedger turns on the data-touch ledger: every event where a
// payload byte is read or written — CPU copy, CPU checksum, host-bus
// DMA, media DMA, wire transit — is recorded as an interval record for
// post-run audit (the single-copy oracle). Must run before AddHost so
// each host's kernel and adaptor get their hooks.
func (tb *Testbed) EnableLedger() *ledger.Ledger {
	if len(tb.Hosts) > 0 {
		panic("core: EnableLedger must be called before AddHost")
	}
	if tb.Led == nil {
		tb.Led = ledger.New(tb.Eng.Now)
		wireHook := tb.Led.Hook("wire")
		tb.Net.Led = wireHook
		tb.EthNet.Led = wireHook
	}
	return tb.Led
}

// FlightDump serializes each host's recent ledger events, the tail of the
// telemetry trace, and the per-kind fault-injector counters into one JSON
// document — the flight recorder image dumped when a watchdog or fault
// oracle fires. The fault section tells a reader of a wedged-run dump
// which injections had actually fired by the time the watchdog gave up.
func (tb *Testbed) FlightDump() []byte {
	var led, trace, faults []byte
	if tb.Led != nil {
		led = tb.Led.FlightDump()
	}
	if tb.Tel != nil {
		trace = tb.Tel.ChromeTail(256)
	}
	if tb.FaultInj != nil {
		faults, _ = json.Marshal(tb.FaultInj.FiredMap())
	}
	out := append([]byte(`{"ledger":`), orNull(led)...)
	out = append(out, `,"trace":`...)
	out = append(out, orNull(trace)...)
	out = append(out, `,"faults":`...)
	out = append(out, orNull(faults)...)
	return append(out, '}')
}

func orNull(b []byte) []byte {
	if len(b) == 0 {
		return []byte("null")
	}
	return b
}

// EnableEngineObs turns on the simulator meta-observer: the engine counts
// its own real work (events dispatched per kind, queue and timer
// high-waters, advisory wall-clock/allocation attribution) and every host
// kernel added afterwards counts its charges. Unlike the other obs
// layers, this one measures the simulator in wall-clock time; it still
// never touches virtual time, so enabling it cannot change results. Pass
// nil to create a fresh observer, or an existing one to accumulate one
// observatory across several testbeds (the simbench soak matrix). Must
// run before AddHost so kernels get their hooks.
func (tb *Testbed) EnableEngineObs(o *engine.Observer) *engine.Observer {
	if len(tb.Hosts) > 0 {
		panic("core: EnableEngineObs must be called before AddHost")
	}
	if o == nil {
		o = engine.New()
	}
	tb.EngObs = o
	o.Attach(tb.Eng)
	return o
}

// EnableFaults installs a fault injector on every fabric and every host
// added afterwards: the wire surfaces immediately, the CAB and kernel
// surfaces as each host is assembled. Add the plan's rules to inj before
// calling. Must run before AddHost.
func (tb *Testbed) EnableFaults(inj *fault.Injector) *fault.Injector {
	if len(tb.Hosts) > 0 {
		panic("core: EnableFaults must be called before AddHost")
	}
	tb.FaultInj = inj
	inj.WireNet(tb.Net)
	inj.WireNet(tb.EthNet)
	tb.Net.SetLinkInjector(inj)
	if tb.Tel != nil {
		inj.SetObs(tb.Tel.Registry("net"), tb.Tel.Trace())
	}
	return inj
}

// AddHost assembles a host and joins it to the testbed fabrics.
func (tb *Testbed) AddHost(cfg HostConfig) *Host {
	if cfg.Mach == nil {
		cfg.Mach = cost.Alpha400()
	}
	h := &Host{Name: cfg.Name, Cfg: cfg}
	h.K = kern.New(cfg.Name, tb.Eng, cfg.Mach)
	if tb.Tel != nil {
		h.K.Obs = tb.Tel.Registry(cfg.Name)
		h.K.RegisterObs()
	}
	if tb.Prof != nil {
		h.K.Prof = tb.Prof.Host(cfg.Name)
	}
	if tb.Led != nil {
		h.K.Led = tb.Led.Hook(cfg.Name)
	}
	h.K.EngObs = tb.EngObs
	h.VM = kern.NewVM(h.K)
	h.VM.LazyUnpin = cfg.LazyUnpin
	h.Stk = tcpip.NewStack(h.K, cfg.Addr)
	h.Stk.CC = cfg.CC
	if tb.NetObs != nil {
		h.Stk.SetNetObs(tb.NetObs, int(cfg.CABNode))
	}

	cabCfg := cab.DefaultConfig()
	if cfg.CABConfig != nil {
		cabCfg = *cfg.CABConfig
	}
	h.CAB = cab.New(tb.Eng, cfg.Mach, tb.Net, cfg.CABNode, cabCfg)
	h.CAB.SetObs(h.K.Obs)
	h.CAB.Led = h.K.Led
	h.CAB.Host = cfg.Name
	if cfg.Arbiter != nil {
		cab.NewArbiter(h.CAB, *cfg.Arbiter)
	}
	if tb.FaultInj != nil {
		tb.FaultInj.WireCAB(h.CAB)
		tb.FaultInj.WireKernel(h.K)
	}
	if !cfg.NoDriver {
		h.Drv = cabdrv.New("cab0", h.K, h.CAB, cfg.Mode == socket.ModeSingleCopy)
		h.Drv.Input = h.Stk.Input
		h.Drv.ResetNotify = h.Stk.DeviceReset
		if cfg.MTU > 0 {
			h.Drv.SetMTU(cfg.MTU)
		}
	}
	if cfg.EthNode != 0 {
		h.Eth = ethdev.New("en0", h.K, tb.EthNet, cfg.EthNode, 0)
		h.Eth.Input = h.Stk.Input
	}
	if cfg.Loopback {
		h.Lo = loop.New(h.K)
		h.Lo.Input = h.Stk.Input
		h.Stk.Routes.AddHost(cfg.Addr, h.Lo, 0)
	}
	if tb.Series != nil {
		tb.registerSeries(h)
	}
	tb.Hosts = append(tb.Hosts, h)
	return h
}

// registerSeries wires the host's utilization columns. Gauge columns
// share instruments with the subsystems that set them via the registry's
// name interning.
func (tb *Testbed) registerSeries(h *Host) {
	s := tb.Series.Series(h.Name)
	k := h.K
	s.UtilPerMille("cpu.util_pm", func() int64 { return int64(k.BusyTime()) })
	for i, name := range kern.CategoryNames() {
		c := kern.Category(i)
		s.UtilPerMille("cpu."+name+"_pm", func() int64 { return int64(k.CategoryTime(c)) })
	}
	pages := h.K.Obs.Gauge("cab.netmem_pages")
	s.Level("cab.netmem_pages", pages.Value)
	s.Peak("cab.netmem_pages_peak", pages)
	s.Peak("tcp.snd_q_peak", h.K.Obs.Gauge("tcp.snd_q"))
	s.Peak("tcp.rcv_q_peak", h.K.Obs.Gauge("tcp.rcv_q"))
	s.Peak("tcp.snd_wnd_peak", h.K.Obs.Gauge("tcp.snd_wnd"))
}

// Snapshot returns the host's current metric values (empty when telemetry
// is disabled).
func (h *Host) Snapshot() obs.HostMetrics {
	if h.K.Obs == nil {
		return obs.HostMetrics{Host: h.Name}
	}
	return h.K.Obs.Snapshot()
}

// RouteCAB installs host routes in both directions between a and b over
// the HIPPI fabric.
func (tb *Testbed) RouteCAB(a, b *Host) {
	if a.Drv == nil || b.Drv == nil {
		panic("core: RouteCAB requires CAB drivers on both hosts")
	}
	a.Stk.Routes.AddHost(b.Cfg.Addr, a.Drv, netif.LinkAddr(b.Cfg.CABNode))
	b.Stk.Routes.AddHost(a.Cfg.Addr, b.Drv, netif.LinkAddr(a.Cfg.CABNode))
}

// RouteEth installs host routes between a and b over the legacy medium.
func (tb *Testbed) RouteEth(a, b *Host) {
	if a.Eth == nil || b.Eth == nil {
		panic("core: RouteEth requires Ethernet devices on both hosts")
	}
	a.Stk.Routes.AddHost(b.Cfg.Addr, a.Eth, netif.LinkAddr(b.Cfg.EthNode))
	b.Stk.Routes.AddHost(a.Cfg.Addr, b.Eth, netif.LinkAddr(a.Cfg.EthNode))
}

// NewUserTask creates a user task on the host with its own address space.
func (h *Host) NewUserTask(name string, spaceSize units.Size) *kern.Task {
	if spaceSize <= 0 {
		spaceSize = 8 * units.MB
	}
	space := mem.NewAddrSpace(fmt.Sprintf("%s/%s", h.Name, name),
		spaceSize, h.K.Mach.PageSize)
	return h.K.NewTask(name, kern.PrioUser, space)
}

// SocketConfig returns the socket configuration matching the host's stack
// variant.
func (h *Host) SocketConfig() socket.Config {
	return socket.Config{Mode: h.Cfg.Mode}
}

// Dial opens a stream socket from task on h to raddr:rport.
func (h *Host) Dial(p *sim.Proc, task *kern.Task, raddr wire.Addr, rport uint16) (*socket.Socket, error) {
	return socket.Dial(p, h.K, h.VM, task, h.Stk, raddr, rport, h.SocketConfig())
}

// Accept wraps a listener accept with the host's socket configuration.
func (h *Host) Accept(p *sim.Proc, task *kern.Task, l *tcpip.TCPListener) *socket.Socket {
	return socket.Accept(p, h.K, h.VM, task, l, h.SocketConfig())
}
