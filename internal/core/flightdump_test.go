package core

import (
	"encoding/json"
	"testing"

	"repro/internal/obs/ledger"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
)

// flightImage mirrors the FlightDump JSON shape for decoding in tests.
type flightImage struct {
	Ledger *struct {
		NS    int64 `json:"ns"`
		Hosts []struct {
			Host    string           `json:"host"`
			Records []map[string]any `json:"records"`
		} `json:"hosts"`
	} `json:"ledger"`
	Trace *struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	} `json:"trace"`
}

// runAuditFailure runs a small transfer on the unmodified stack and
// asserts the single-copy oracle against it — a deterministic audit
// failure (the unmodified stack CPU-copies every byte). It returns the
// testbed for post-failure dumping, mirroring how the soak suite reaches
// FlightDump when an oracle fires.
func runAuditFailure(t *testing.T, telemetry bool) *Testbed {
	t.Helper()
	tb := NewTestbed(9)
	tb.EnableLedger()
	if telemetry {
		tb.EnableTelemetry()
	}
	a := tb.AddHost(HostConfig{Name: "A", Addr: addrA, Mode: socket.ModeUnmodified, CABNode: 1})
	b := tb.AddHost(HostConfig{Name: "B", Addr: addrB, Mode: socket.ModeUnmodified, CABNode: 2})
	tb.RouteCAB(a, b)
	const total = 256 * units.KB
	const ws = 64 * units.KB

	lis := b.Stk.Listen(port)
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(ws, 8)
		for {
			if _, err := s.Read(p, buf); err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		buf := st.Space.Alloc(ws, 8)
		for sent := units.Size(0); sent < total; sent += ws {
			if err := s.WriteAll(p, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()

	err := tb.Led.AssertSingleCopy(ledger.AuditConfig{
		Flow: tb.Led.MainFlow(), Total: total,
		SndHost: "A", RcvHost: "B", Strict: true,
	})
	if err == nil {
		t.Fatal("vacuous: single-copy oracle passed on the unmodified stack")
	}
	return tb
}

// TestFlightDumpOnAuditFailure pins the flight-recorder image taken when
// an audit oracle fires: valid JSON whose ledger section carries each
// host's recent records (including the CPU copies that failed the oracle)
// and whose trace section carries the telemetry tail.
func TestFlightDumpOnAuditFailure(t *testing.T) {
	tb := runAuditFailure(t, true)
	dump := tb.FlightDump()

	var img flightImage
	if err := json.Unmarshal(dump, &img); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v\n%s", err, dump)
	}
	if img.Ledger == nil {
		t.Fatal("flight dump has no ledger section despite the ledger being enabled")
	}
	if img.Ledger.NS <= 0 {
		t.Fatalf("flight dump stamped at ns=%d, want the end-of-run virtual time", img.Ledger.NS)
	}
	hosts := map[string]int{}
	sawCopy := false
	for _, h := range img.Ledger.Hosts {
		hosts[h.Host] = len(h.Records)
		for _, r := range h.Records {
			if h.Host == "A" && r["kind"] == "cpu_copy" {
				sawCopy = true
			}
		}
	}
	for _, h := range []string{"A", "B", "wire"} {
		if hosts[h] == 0 {
			t.Errorf("flight dump has no recent records for host %q: %v", h, hosts)
		}
	}
	if !sawCopy {
		t.Error("flight dump's sender window does not show the cpu_copy touches the oracle failed on")
	}
	if img.Trace == nil || len(img.Trace.TraceEvents) == 0 {
		t.Error("flight dump has no trace tail despite telemetry being enabled")
	}

	// Determinism: the image is a pure function of the run.
	if string(dump) != string(tb.FlightDump()) {
		t.Error("two dumps of the same run differ")
	}
}

// TestFlightDumpWithoutTelemetry pins the degraded image: with only the
// ledger enabled the trace section is null, and with nothing enabled both
// sections are null — the dump never fabricates data.
func TestFlightDumpWithoutTelemetry(t *testing.T) {
	tb := runAuditFailure(t, false)
	var img flightImage
	if err := json.Unmarshal(tb.FlightDump(), &img); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if img.Ledger == nil {
		t.Fatal("ledger section missing")
	}
	if img.Trace != nil {
		t.Fatal("trace section should be null without telemetry")
	}

	bare := NewTestbed(1)
	if err := json.Unmarshal(bare.FlightDump(), &img); err != nil {
		t.Fatalf("bare flight dump is not valid JSON: %v", err)
	}
}
