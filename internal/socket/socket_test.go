package socket_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/units"
	"repro/internal/wire"
)

const (
	addrA = wire.Addr(0x0a000001)
	addrB = wire.Addr(0x0a000002)
	port  = 5001
)

func rig(t *testing.T, mode socket.Mode) (*core.Testbed, *core.Host, *core.Host) {
	t.Helper()
	tb := core.NewTestbed(21)
	a := tb.AddHost(core.HostConfig{Name: "A", Addr: addrA, Mode: mode, CABNode: 1})
	b := tb.AddHost(core.HostConfig{Name: "B", Addr: addrB, Mode: mode, CABNode: 2})
	tb.RouteCAB(a, b)
	return tb, a, b
}

func TestReadBlocksUntilData(t *testing.T) {
	tb, a, b := rig(t, socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var readAt units.Time
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(8*units.KB, 8)
		n, err := s.Read(p, buf)
		if err != nil || n == 0 {
			t.Errorf("read: n=%v err=%v", n, err)
		}
		readAt = p.Now()
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		p.Sleep(50 * units.Millisecond) // delay before writing
		buf := st.Space.Alloc(4*units.KB, 8)
		s.WriteAll(p, buf)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if readAt < 50*units.Millisecond {
		t.Fatalf("read returned at %v, before any data was written", readAt)
	}
}

func TestPartialReads(t *testing.T) {
	// A reader with a small buffer must see the stream in order across
	// many partial reads.
	tb, a, b := rig(t, socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(3000, 8) // odd, small
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	want := make([]byte, 200*units.KB)
	for i := range want {
		want[i] = byte(i * 31)
	}
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			return
		}
		buf := st.Space.Alloc(units.Size(len(want)), 8)
		copy(buf.Bytes(), want)
		s.WriteAll(p, buf)
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if !bytes.Equal(got, want) {
		t.Fatalf("stream mismatch: got %d bytes", len(got))
	}
}

func TestUnalignedReadFallsBackToCopy(t *testing.T) {
	tb, a, b := rig(t, socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var sock *socket.Socket
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		sock = b.Accept(p, rt, lis)
		// A 2-byte misaligned read buffer cannot take SDMA (Section 4.5).
		buf := rt.Space.AllocMisaligned(64*units.KB, 2)
		for {
			n, err := sock.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	want := make([]byte, 128*units.KB)
	for i := range want {
		want[i] = byte(i * 7)
	}
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			return
		}
		buf := st.Space.Alloc(units.Size(len(want)), 8)
		copy(buf.Bytes(), want)
		s.WriteAll(p, buf)
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if !bytes.Equal(got, want) {
		t.Fatalf("unaligned read corrupted stream (%d bytes)", len(got))
	}
	if sock.UIOReads != 0 {
		t.Fatalf("UIO (DMA) reads = %d, want 0 for misaligned buffer", sock.UIOReads)
	}
	if sock.CopyReads == 0 {
		t.Fatal("expected copy-path reads")
	}
	// No pages may stay pinned after the fallback path.
	if rt.Space.PinnedPages() != 0 {
		t.Fatalf("pinned pages = %d after read", rt.Space.PinnedPages())
	}
}

func TestWriteReturnsAfterDataSecured(t *testing.T) {
	// Copy semantics: after Write returns, scribbling on the buffer must
	// not corrupt what the receiver sees — even with retransmissions
	// pending.
	tb, a, b := rig(t, socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(64*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		s, err := a.Dial(p, st, addrB, port)
		if err != nil {
			return
		}
		buf := st.Space.Alloc(64*units.KB, 8)
		for w := 0; w < 8; w++ {
			for i := range buf.Bytes() {
				buf.Bytes()[i] = byte(i + w)
			}
			s.WriteAll(p, buf)
			// Scribble immediately after return.
			for i := range buf.Bytes() {
				buf.Bytes()[i] = 0xEE
			}
		}
		s.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if len(got) != 8*64*1024 {
		t.Fatalf("got %d bytes", len(got))
	}
	for w := 0; w < 8; w++ {
		chunk := got[w*64*1024 : (w+1)*64*1024]
		for i, v := range chunk {
			if v != byte(i+w) {
				t.Fatalf("write %d byte %d = %#x: user scribble leaked (copy semantics broken)", w, i, v)
			}
		}
	}
	if st.Space.PinnedPages() != 0 {
		t.Fatalf("pinned pages leaked: %d", st.Space.PinnedPages())
	}
}

func TestDGramTruncation(t *testing.T) {
	tb, a, b := rig(t, socket.ModeSingleCopy)
	rt := b.NewUserTask("rcv", 0)
	rx := socket.MustDGram(b.K, b.VM, rt, b.Stk, 9000, b.SocketConfig())
	var n units.Size
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		small := rt.Space.Alloc(1000, 8)
		n, _, _ = rx.RecvFrom(p, small)
	})
	st := a.NewUserTask("snd", 0)
	tb.Eng.Go("snd", func(p *sim.Proc) {
		tx := socket.MustDGram(a.K, a.VM, st, a.Stk, 0, a.SocketConfig())
		buf := st.Space.Alloc(8*units.KB, 8)
		tx.SendTo(p, buf, addrB, 9000)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if n != 1000 {
		t.Fatalf("received %v bytes, want 1000 (truncated)", n)
	}
	// The truncated remainder must not leak network memory.
	if b.CAB.FreePages() != b.CAB.TotalPages() {
		t.Fatal("truncation leaked CAB pages")
	}
}

func TestUtilizationAccountingPerMode(t *testing.T) {
	// The single-copy sender must burn almost no copy/csum CPU; the
	// unmodified sender must burn plenty.
	for _, mode := range []socket.Mode{socket.ModeUnmodified, socket.ModeSingleCopy} {
		tb, a, b := rig(t, mode)
		lis := b.Stk.Listen(port)
		rt := b.NewUserTask("rcv", 0)
		tb.Eng.Go("rcv", func(p *sim.Proc) {
			s := b.Accept(p, rt, lis)
			buf := rt.Space.Alloc(64*units.KB, 8)
			for {
				if _, err := s.Read(p, buf); err != nil {
					return
				}
			}
		})
		st := a.NewUserTask("snd", 0)
		tb.Eng.Go("snd", func(p *sim.Proc) {
			s, err := a.Dial(p, st, addrB, port)
			if err != nil {
				return
			}
			buf := st.Space.Alloc(64*units.KB, 8)
			for i := 0; i < 16; i++ {
				s.WriteAll(p, buf)
			}
			s.Close(p)
		})
		tb.Eng.Run()
		tb.Eng.KillAll()
		copyTime := a.K.CategoryTime(kern.CatCopy) + a.K.CategoryTime(kern.CatCsum)
		vmTime := a.K.CategoryTime(kern.CatVM)
		if mode == socket.ModeSingleCopy {
			if copyTime != 0 {
				t.Errorf("single-copy sender burned %v on copy/csum", copyTime)
			}
			if vmTime == 0 {
				t.Error("single-copy sender should pay VM costs")
			}
		} else {
			if copyTime == 0 {
				t.Error("unmodified sender should pay copy/csum costs")
			}
			if vmTime != 0 {
				t.Errorf("unmodified sender paid VM costs: %v", vmTime)
			}
		}
	}
}

func TestAlignFirstPacketOptimization(t *testing.T) {
	// Section 4.5 extension: a large misaligned write is split into a
	// short copied prefix plus an aligned single-copy remainder.
	tb, a, b := rig(t, socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	var got []byte
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(256*units.KB, 8)
		for {
			n, err := s.Read(p, buf)
			if n > 0 {
				got = append(got, buf.Slice(0, n).Bytes()...)
			}
			if err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	var sock *socket.Socket
	tb.Eng.Go("snd", func(p *sim.Proc) {
		cfg := a.SocketConfig()
		cfg.AlignFirstPacket = true
		conn, err := a.Stk.Connect(a.K.TaskCtx(p, st), addrB, port)
		if err != nil {
			return
		}
		sock = socket.NewSocket(a.K, a.VM, st, conn, cfg)
		buf := st.Space.AllocMisaligned(256*units.KB, 2)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = byte(i * 3)
		}
		sock.WriteAll(p, buf)
		sock.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if len(got) != 256*1024 {
		t.Fatalf("got %d bytes", len(got))
	}
	for i := range got {
		if got[i] != byte(i*3) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	if sock.AlignedWrites != 1 {
		t.Fatalf("aligned writes = %d, want 1", sock.AlignedWrites)
	}
	if sock.UIOWrites != 0 {
		t.Fatalf("plain UIO writes = %d, want 0 (the buffer was misaligned)", sock.UIOWrites)
	}
	// The bulk must have gone outboard: sender copy time covers only the
	// 2-byte prefix (plus nothing else).
	copyT := a.K.CategoryTime(kern.CatCopy)
	if copyT > 10*units.Microsecond {
		t.Fatalf("sender copy time %v: bulk did not take the DMA path", copyT)
	}
}

func TestAlignFirstPacketDisabledByDefault(t *testing.T) {
	tb, a, b := rig(t, socket.ModeSingleCopy)
	lis := b.Stk.Listen(port)
	rt := b.NewUserTask("rcv", 0)
	tb.Eng.Go("rcv", func(p *sim.Proc) {
		s := b.Accept(p, rt, lis)
		buf := rt.Space.Alloc(256*units.KB, 8)
		for {
			if _, err := s.Read(p, buf); err != nil {
				return
			}
		}
	})
	st := a.NewUserTask("snd", 0)
	var sock *socket.Socket
	tb.Eng.Go("snd", func(p *sim.Proc) {
		var err error
		sock, err = a.Dial(p, st, addrB, port)
		if err != nil {
			return
		}
		buf := st.Space.AllocMisaligned(256*units.KB, 2)
		sock.WriteAll(p, buf)
		sock.Close(p)
	})
	tb.Eng.Run()
	tb.Eng.KillAll()
	if sock.AlignedWrites != 0 || sock.CopyWrites == 0 {
		t.Fatalf("aligned=%d copy=%d; default must use the plain copy path",
			sock.AlignedWrites, sock.CopyWrites)
	}
}
