package socket

import (
	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/units"
	"repro/internal/wire"
)

// DGram is a UDP socket with copy semantics.
type DGram struct {
	K    *kern.Kernel
	VM   *kern.VM
	Task *kern.Task
	Sock *tcpip.UDPSock
	Cfg  Config
}

// NewDGram binds a UDP socket (port 0 selects an ephemeral port). It fails
// when the port is taken or the ephemeral range is exhausted.
func NewDGram(k *kern.Kernel, vm *kern.VM, task *kern.Task, stk *tcpip.Stack, port uint16, cfg Config) (*DGram, error) {
	u, err := stk.UDPBind(port)
	if err != nil {
		return nil, err
	}
	return &DGram{K: k, VM: vm, Task: task, Sock: u, Cfg: cfg}, nil
}

// MustDGram is NewDGram for callers whose bind cannot fail (fixed free
// ports in tests and tools); it panics on bind errors.
func MustDGram(k *kern.Kernel, vm *kern.VM, task *kern.Task, stk *tcpip.Stack, port uint16, cfg Config) *DGram {
	d, err := NewDGram(k, vm, task, stk, port, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// SendTo transmits buf as one datagram. On the single-copy path the call
// blocks until the data is outboard; the driver frees the outboard packet
// after the media send (UDP has no retransmission state).
func (d *DGram) SendTo(p *sim.Proc, buf mem.Buf, dst wire.Addr, dport uint16) error {
	ctx := d.K.TaskCtx(p, d.Task).In("socket").WithFlow(int(d.Sock.Port()))
	ctx.Charge(d.K.Mach.SyscallCost, kern.CatSyscall)
	ctx.Charge(d.K.Mach.SocketPerPacket, kern.CatProto)
	// Per-flow netmem admission (no-op without an arbiter on the route).
	if adm := d.Sock.TxAdmitter(dst); adm != nil {
		adm.AdmitTx(p, int(d.Sock.Port()), buf.Len+wire.IPHdrLen+wire.UDPHdrLen)
	}
	u := mem.NewUIO(buf)
	useUIO := d.Cfg.Mode == ModeSingleCopy &&
		buf.Len >= d.Cfg.UIOThreshold &&
		u.AlignedTo(0, buf.Len, 4)
	if !useUIO {
		tmp := make([]byte, buf.Len)
		ctx.CopyFromUIO(u, 0, buf.Len, tmp, buf.Len)
		var head, tail *mbuf.Mbuf
		for off := units.Size(0); off < buf.Len; off += mbuf.MCLBYTES {
			n := buf.Len - off
			if n > mbuf.MCLBYTES {
				n = mbuf.MCLBYTES
			}
			d.K.WaitAlloc(p)
			cl := mbuf.NewCluster(tmp[off : off+n])
			if head == nil {
				head = cl
			} else {
				tail.SetNext(cl)
			}
			tail = cl
		}
		d.Sock.SendTo(ctx, head, buf.Len, dst, dport)
		return nil
	}
	d.K.WaitAlloc(p)
	d.VM.MapUIO(ctx, u, 0, buf.Len)
	d.VM.PinUIO(ctx, u, 0, buf.Len)
	trk := newTracker(d.K.Eng)
	trk.add(buf.Len)
	m := mbuf.NewUIO(u, 0, buf.Len, &mbuf.Hdr{Owner: trk})
	d.Sock.SendTo(ctx, m, buf.Len, dst, dport)
	trk.wait(p)
	d.VM.UnpinUIO(ctx, u, 0, buf.Len)
	for _, seg := range u.Segments(0, buf.Len) {
		d.VM.UnmapBuf(u.Space, seg.Addr, seg.Len)
	}
	return nil
}

// RecvFrom receives one datagram into buf, returning the byte count and
// source. Datagrams longer than buf are truncated (BSD semantics).
func (d *DGram) RecvFrom(p *sim.Proc, buf mem.Buf) (units.Size, wire.Addr, uint16) {
	ctx := d.K.TaskCtx(p, d.Task).In("socket").WithFlow(int(d.Sock.Port()))
	ctx.Charge(d.K.Mach.SyscallCost, kern.CatSyscall)
	for {
		dg := d.Sock.RecvFrom(p)
		if dg == nil {
			return 0, 0, 0
		}
		n := dg.Len
		if n > buf.Len {
			n = buf.Len
		}
		u := mem.NewUIO(buf)
		take, rest := mbuf.SplitAt(dg.Chain, n)
		s := &Socket{K: d.K, VM: d.VM, Task: d.Task, Cfg: d.Cfg}
		err := s.copyOut(ctx, u, take, n)
		mbuf.FreeChain(take)
		mbuf.FreeChain(rest)
		if err != nil {
			// The datagram's outboard payload died (adaptor reset) between
			// queueing and this read: the destination bytes are undefined.
			// UDP has no way to recover it — count a clean loss and wait
			// for the next datagram rather than deliver wiped bytes.
			d.Sock.CountDevResetDrop()
			continue
		}
		return n, dg.Src, dg.SPort
	}
}

// Close unbinds the socket.
func (d *DGram) Close() { d.Sock.Close() }
