// Package socket implements the Berkeley sockets layer with copy
// semantics — the API whose efficient support is the point of the paper.
//
// On the traditional path, Write copies user data into kernel cluster
// mbufs and Read copies it back out. On the single-copy path, Write
// instead maps and pins the user pages and appends M_UIO descriptor mbufs;
// the write returns only after every byte has been secured outboard (the
// outstanding-DMA counter of Section 4.4.2), preserving copy semantics
// without a host copy. Read issues SDMA copy-out for M_WCAB data straight
// into the user's buffer.
//
// Per Section 4.4.3 the path is chosen per operation: small or unaligned
// reads/writes use the traditional copy path even in single-copy mode.
package socket

import (
	"errors"

	"repro/internal/kern"
	"repro/internal/mbuf"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/units"
	"repro/internal/wire"
)

// Mode selects the stack variant (Figure 2: original vs modified).
type Mode int

// Stack variants.
const (
	// ModeUnmodified is the original stack: data is always channeled
	// through kernel buffers and checksummed in software.
	ModeUnmodified Mode = iota
	// ModeSingleCopy is the modified stack with descriptor mbufs and
	// outboard checksumming.
	ModeSingleCopy
)

// ErrEOF is returned by Read at orderly end of stream.
var ErrEOF = errors.New("socket: end of stream")

// Config carries per-socket policy.
type Config struct {
	Mode Mode
	// UIOThreshold is the smallest write that uses the single-copy path
	// (Section 4.4.3). Zero means always (the paper's measured
	// configuration).
	UIOThreshold units.Size
	// ChunkSize is how much is mapped/pinned and appended per iteration —
	// "one socket buffer worth at a time" (Section 4.4.1). Defaults to
	// the connection's maximum segment size.
	ChunkSize units.Size
	// AlignFirstPacket enables the Section 4.5 optimization the paper
	// describes but did not implement: for a large but misaligned write,
	// send a short first chunk through the copy path so the bulk of the
	// data becomes word-aligned and can be DMAed. "This might pay off for
	// very large writes."
	AlignFirstPacket bool
	// AlignMinWrite is the smallest write the alignment optimization
	// applies to (default 64 KB).
	AlignMinWrite units.Size
}

// Socket is a connected stream (TCP) socket.
type Socket struct {
	K    *kern.Kernel
	VM   *kern.VM
	Task *kern.Task
	Conn *tcpip.TCPConn
	Cfg  Config

	// Stats.
	UIOWrites, CopyWrites int
	UIOReads, CopyReads   int
	// AlignedWrites counts misaligned writes salvaged by the Section 4.5
	// short-first-packet optimization.
	AlignedWrites int

	// Telemetry counters (shared across sockets on the same host through
	// the registry; nil when telemetry is disabled).
	ctrUIOWrites, ctrCopyWrites   *obs.Counter
	ctrUIOReads, ctrCopyReads     *obs.Counter
	ctrAlignedWrites, ctrDMAWaits *obs.Counter

	// Causal critical-path recorder (nil unless enabled) and the writer and
	// reader happens-before chain cursors: each recorded event's binding
	// parent is the previous event on its chain, so the gap between them is
	// attributed to the edge's cause class.
	crit       *obs.CritRec
	critHost   string
	wCur, rCur int32
}

// NewSocket wraps an established connection.
func NewSocket(k *kern.Kernel, vm *kern.VM, task *kern.Task, conn *tcpip.TCPConn, cfg Config) *Socket {
	s := &Socket{K: k, VM: vm, Task: task, Conn: conn, Cfg: cfg}
	if cfg.Mode == ModeSingleCopy {
		conn.NoCoalesce = true
	}
	if r := k.Obs; r != nil {
		s.ctrUIOWrites = r.Counter("socket.uio_writes")
		s.ctrCopyWrites = r.Counter("socket.copy_writes")
		s.ctrUIOReads = r.Counter("socket.uio_reads")
		s.ctrCopyReads = r.Counter("socket.copy_reads")
		s.ctrAlignedWrites = r.Counter("socket.aligned_writes")
		s.ctrDMAWaits = r.Counter("socket.dma_wait_wakeups")
		s.crit = r.TraceSink().Crit()
		s.critHost = r.Host()
	}
	return s
}

// critEv appends one event to the writer or reader causal chain.
func (s *Socket) critEv(parent int32, cause obs.Cause, kind string, flow int, off, n units.Size) int32 {
	return s.crit.Ev(parent, cause, kind, s.critHost, flow, int64(off), int64(n))
}

// critNow samples virtual time for stall detection (0 when the recorder is
// off, so disabled runs skip the clock reads entirely).
func (s *Socket) critNow() units.Time {
	if s.crit == nil {
		return 0
	}
	return s.K.Eng.Now()
}

// critSndWake records the writer's wakeup from a send-space stall entered
// at t0 (no event when the wait never blocked). Send-buffer space frees on
// acknowledgement, so the stall binds to the peer's ACK clock; the writer's
// own chain survives as a slack edge.
func (s *Socket) critSndWake(t0 units.Time) {
	if s.crit == nil || s.K.Eng.Now() <= t0 {
		return
	}
	c := s.Conn
	s.wCur = s.crit.EvJoin(s.wCur, obs.CauseApp, c.CritAckEv(), obs.CauseAckClock,
		"snd_wake", s.critHost, int(c.LocalPort()), int64(c.AppendStreamOff()), 0)
}

// critSndAdmit records a netmem-arbiter admission stall entered at t0.
func (s *Socket) critSndAdmit(t0 units.Time, chunk units.Size) {
	if s.crit == nil || s.K.Eng.Now() <= t0 {
		return
	}
	c := s.Conn
	s.wCur = s.critEv(s.wCur, obs.CauseNetmem, "snd_admit",
		int(c.LocalPort()), c.AppendStreamOff(), chunk)
}

// tracker is the outstanding-DMA (UIO) counter that synchronizes
// application wakeup with the driver (Section 4.4.2).
type tracker struct {
	pending units.Size
	sig     *sim.Signal
}

func newTracker(e *sim.Engine) *tracker { return &tracker{sig: sim.NewSignal(e)} }

func (t *tracker) add(n units.Size) { t.pending += n }

// DMAStarted implements mbuf.Notifier.
func (t *tracker) DMAStarted(units.Size) {}

// DMADone implements mbuf.Notifier.
func (t *tracker) DMADone(n units.Size) {
	t.pending -= n
	if t.pending <= 0 {
		t.sig.Broadcast()
	}
}

func (t *tracker) wait(p *sim.Proc) {
	for t.pending > 0 {
		t.sig.Wait(p)
	}
}

// chunkSize resolves the per-iteration unit.
func (s *Socket) chunkSize() units.Size {
	if s.Cfg.ChunkSize > 0 {
		return s.Cfg.ChunkSize
	}
	return s.Conn.MaxSeg
}

// Write sends the whole buffer, blocking until it may be reused (copy
// semantics): on the traditional path when the last byte is copied into
// kernel buffers, on the single-copy path when the last byte is secured
// outboard.
func (s *Socket) Write(p *sim.Proc, buf mem.Buf) (units.Size, error) {
	ctx := s.K.TaskCtx(p, s.Task).In("socket").WithFlow(int(s.Conn.LocalPort()))
	ctx.Charge(s.K.Mach.SyscallCost, kern.CatSyscall)
	if s.crit != nil {
		// The gap since the writer's previous event is the application's
		// own time (or, for the first write, the chain root).
		s.wCur = s.critEv(s.wCur, obs.CauseApp, "write_start",
			int(s.Conn.LocalPort()), s.Conn.AppendStreamOff(), buf.Len)
	}

	u := mem.NewUIO(buf)
	aligned := u.AlignedTo(0, buf.Len, 4) // word alignment (Section 4.5)
	useUIO := s.Cfg.Mode == ModeSingleCopy &&
		buf.Len >= s.Cfg.UIOThreshold &&
		aligned
	if useUIO {
		s.UIOWrites++
		s.ctrUIOWrites.Inc()
		return s.writeUIO(ctx, u, buf)
	}
	if !aligned && s.alignable(buf) {
		// Section 4.5 extension: peel off a short misaligned prefix via
		// the copy path; the remainder is word-aligned and takes the
		// single-copy path.
		prefix := 4 - buf.Addr%4
		s.AlignedWrites++
		s.ctrAlignedWrites.Inc()
		n1, err := s.writeCopy(ctx, u, buf.Slice(0, prefix))
		if err != nil {
			return n1, err
		}
		rest := buf.Slice(prefix, buf.Len-prefix)
		n2, err := s.writeUIO(ctx, mem.NewUIO(rest), rest)
		return n1 + n2, err
	}
	s.CopyWrites++
	s.ctrCopyWrites.Inc()
	return s.writeCopy(ctx, u, buf)
}

// alignable reports whether the alignment optimization applies to buf.
func (s *Socket) alignable(buf mem.Buf) bool {
	if s.Cfg.Mode != ModeSingleCopy || !s.Cfg.AlignFirstPacket {
		return false
	}
	min := s.Cfg.AlignMinWrite
	if min == 0 {
		min = 64 * units.KB
	}
	return buf.Len >= min && buf.Len >= s.Cfg.UIOThreshold
}

// writeCopy is the traditional sosend: copy into cluster mbufs.
func (s *Socket) writeCopy(ctx kern.Ctx, u *mem.UIO, buf mem.Buf) (units.Size, error) {
	c := s.Conn
	total := buf.Len
	chunkMax := s.chunkSize()
	// Ledger attribution: this write's byte 0 lands at the current append
	// stream offset (stable across the loop: ACKs shift sndUna and sndLen
	// in lockstep). The copies below address the UIO at write offsets, so
	// the base maps them straight to stream bytes.
	ctx = ctx.OnStream(int(c.LocalPort()), c.AppendStreamOff())
	boundary := true
	for sent := units.Size(0); sent < total; {
		t0 := s.critNow()
		if err := c.WaitSndSpace(ctx.P); err != nil {
			return sent, err
		}
		s.critSndWake(t0)
		chunk := total - sent
		if avail := c.SndAvail(); chunk > avail {
			chunk = avail
		}
		if chunk > chunkMax {
			chunk = chunkMax
		}
		// Per-flow netmem admission (no-op without an arbiter): throttle
		// here, above the shared transmit daemon, so an over-share flow
		// blocks only its own writer.
		t0 = s.critNow()
		c.AdmitSnd(ctx.P, chunk)
		s.critSndAdmit(t0, chunk)
		ctx.Charge(s.K.Mach.SocketPerPacket, kern.CatProto)
		var head, tail *mbuf.Mbuf
		for off := units.Size(0); off < chunk; off += mbuf.MCLBYTES {
			n := chunk - off
			if n > mbuf.MCLBYTES {
				n = mbuf.MCLBYTES
			}
			s.K.WaitAlloc(ctx.P)
			tmp := make([]byte, n)
			ctx.CopyFromUIO(u, sent+off, n, tmp, total)
			cl := mbuf.NewCluster(tmp)
			if head == nil {
				head = cl
			} else {
				tail.SetNext(cl)
			}
			tail = cl
		}
		if s.crit != nil {
			// The chunk's bytes became sendable when the CPU finished
			// copying them into kernel clusters: a data-touching CPU edge.
			s.wCur = s.critEv(s.wCur, obs.CauseCPUCopy, "sock_copy",
				int(c.LocalPort()), c.AppendStreamOff(), chunk)
			head.SetCritEv(s.wCur)
		}
		if err := c.Append(ctx, head, chunk, boundary); err != nil {
			return sent, err
		}
		if s.crit != nil {
			s.wCur = s.critEv(s.wCur, obs.CauseCPU, "sock_append",
				int(c.LocalPort()), c.AppendStreamOff(), chunk)
		}
		boundary = false
		sent += chunk
	}
	return total, nil
}

// writeUIO is the single-copy sosend: map and pin incrementally, append
// M_UIO descriptors, and wait for the outstanding DMAs.
func (s *Socket) writeUIO(ctx kern.Ctx, u *mem.UIO, buf mem.Buf) (units.Size, error) {
	c := s.Conn
	total := buf.Len
	chunkMax := s.chunkSize()
	trk := newTracker(s.K.Eng)
	var pinned []mem.Iovec
	boundary := true
	for sent := units.Size(0); sent < total; {
		t0 := s.critNow()
		if err := c.WaitSndSpace(ctx.P); err != nil {
			s.unpinAll(ctx, u, pinned)
			return sent, err
		}
		s.critSndWake(t0)
		chunk := total - sent
		if avail := c.SndAvail(); chunk > avail {
			chunk = avail
		}
		if chunk > chunkMax {
			chunk = chunkMax
		}
		// Per-flow netmem admission before committing the chunk (see
		// writeCopy).
		t0 = s.critNow()
		c.AdmitSnd(ctx.P, chunk)
		s.critSndAdmit(t0, chunk)
		// The socket layer, which has the application context OSF/1
		// drivers lack, maps the chunk into kernel space and pins it for
		// DMA (Section 4.4.1).
		s.K.WaitAlloc(ctx.P)
		s.VM.MapUIO(ctx, u, sent, chunk)
		s.VM.PinUIO(ctx, u, sent, chunk)
		pinned = append(pinned, mem.Iovec{Addr: sent, Len: chunk})
		trk.add(chunk)
		ctx.Charge(s.K.Mach.SocketPerPacket, kern.CatProto)
		if s.crit != nil {
			// Map+pin is CPU work, but it never touches the payload bytes:
			// a plain cpu edge, not cpu-copy — the sender-side difference
			// the single-copy critical path exists to show.
			s.wCur = s.critEv(s.wCur, obs.CauseCPU, "sock_pin",
				int(c.LocalPort()), c.AppendStreamOff(), chunk)
		}
		m := mbuf.NewUIO(u, sent, chunk, &mbuf.Hdr{Owner: trk, DescID: s.K.Led.NextDesc(), CritEv: s.wCur})
		if err := c.Append(ctx, m, chunk, boundary); err != nil {
			trk.DMADone(chunk) // never issued
			s.unpinAll(ctx, u, pinned)
			return sent, err
		}
		if s.crit != nil {
			s.wCur = s.critEv(s.wCur, obs.CauseCPU, "sock_append",
				int(c.LocalPort()), c.AppendStreamOff(), chunk)
		}
		boundary = false
		sent += chunk
	}
	// Copy semantics: return only after the last outstanding DMA
	// completes (Section 4.4.2). A DMA, once issued, cannot be canceled.
	if trk.pending > 0 {
		s.ctrDMAWaits.Inc()
	}
	trk.wait(ctx.P)
	if c.Err != nil {
		// The connection died while DMAs were outstanding (adaptor reset,
		// RST): the teardown released the tracker, but the data was never
		// secured outboard. Surface the teardown error to the writer.
		s.unpinAll(ctx, u, pinned)
		return total, c.Err
	}
	if s.crit != nil {
		// The write returned once the last outstanding SDMA secured the
		// data outboard: the blocked span is DMA time.
		s.wCur = s.critEv(s.wCur, obs.CauseDMA, "write_ret",
			int(c.LocalPort()), c.AppendStreamOff(), total)
	}
	s.unpinAll(ctx, u, pinned)
	return total, nil
}

// unpinAll releases the pinned chunks (lazily if the VM is so configured).
func (s *Socket) unpinAll(ctx kern.Ctx, u *mem.UIO, pinned []mem.Iovec) {
	for _, r := range pinned {
		s.VM.UnpinUIO(ctx, u, r.Addr, r.Len)
		for _, seg := range u.Segments(r.Addr, r.Len) {
			s.VM.UnmapBuf(u.Space, seg.Addr, seg.Len)
		}
	}
}

// Read receives into buf, blocking until at least one byte (or EOF) is
// available, BSD-style. It returns the byte count.
func (s *Socket) Read(p *sim.Proc, buf mem.Buf) (units.Size, error) {
	ctx := s.K.TaskCtx(p, s.Task).In("socket").WithFlow(int(s.Conn.LocalPort()))
	ctx.Charge(s.K.Mach.SyscallCost, kern.CatSyscall)
	c := s.Conn
	if s.crit != nil {
		s.rCur = s.critEv(s.rCur, obs.CauseApp, "read_start",
			int(c.RemotePort()), c.RcvDequeued(), buf.Len)
	}
	if !c.WaitRcvData(p) {
		if c.Err != nil {
			return 0, c.Err
		}
		return 0, ErrEOF
	}
	if s.crit != nil {
		// The reader proceeds once data is queued: if it slept, the wakeup
		// binds to the segment-arrival event that signaled it (a scheduling
		// edge); if data was already waiting, the arrival survives as the
		// slack edge and the reader's own chain binds.
		s.rCur = s.crit.EvJoin(s.rCur, obs.CauseApp, c.CritRcvEv(), obs.CauseSched,
			"rcv_wake", s.critHost, int(c.RemotePort()), int64(c.RcvDequeued()), 0)
	}
	// Ledger attribution: the dequeued chain starts at the stream offset of
	// the bytes consumed so far; flows are keyed by the data sender's local
	// port, our peer.
	base := c.RcvDequeued()
	chain, n := c.DequeueRcv(buf.Len)
	if n == 0 {
		return 0, ErrEOF
	}
	u := mem.NewUIO(buf)
	err := s.copyOut(ctx.OnStream(int(c.RemotePort()), base), u, chain, n)
	mbuf.FreeChain(chain)
	if err != nil {
		// The outboard data vanished mid-copy-out (adaptor reset); the
		// user buffer is undefined. Surface the connection's teardown
		// error when the stack has already swept it.
		if c.Err != nil {
			return 0, c.Err
		}
		return 0, err
	}
	if s.crit != nil {
		// The message is in the application's buffer: a completion point
		// the critical-path analyzer back-walks from.
		s.rCur = s.critEv(s.rCur, obs.CauseCPU, "read_done",
			int(c.RemotePort()), base, n)
		s.crit.MarkDone(s.rCur)
		c.SetCritRdEv(s.rCur)
	}
	c.WindowUpdate(ctx)
	return n, nil
}

// copyOut moves a dequeued chain into the user buffer: CPU copies for
// resident mbufs, SDMA for M_WCAB descriptors when the destination is
// word-aligned (the paper's receive-side single-copy; unaligned reads fall
// back to the copy path, Section 4.5).
func (s *Socket) copyOut(ctx kern.Ctx, u *mem.UIO, chain *mbuf.Mbuf, n units.Size) error {
	trk := newTracker(s.K.Eng)
	var pinned []mem.Iovec
	off := units.Size(0)
	sawDMA := false
	didCopy := false
	var dmaErr error
	for m := chain; m != nil; m = m.Next() {
		ln := m.Len()
		switch m.Type() {
		case mbuf.TData, mbuf.TCluster:
			didCopy = true
			ctx.CopyToUIO(u, off, m.Bytes(), n)
		case mbuf.TWCAB:
			w := m.WCABRef()
			if w.Dead != nil && w.Dead() {
				// The outboard packet was wiped by an adaptor reset after
				// the data was sequenced but before this read drained it.
				if dmaErr == nil {
					dmaErr = tcpip.ErrDeviceReset
				}
				off += ln
				continue
			}
			if s.Cfg.Mode == ModeSingleCopy && w.CopyOut != nil && u.AlignedTo(off, ln, 4) {
				s.UIOReads++
				s.ctrUIOReads.Inc()
				sawDMA = true
				s.VM.PinUIO(ctx, u, off, ln)
				pinned = append(pinned, mem.Iovec{Addr: off, Len: ln})
				var scatter [][]byte
				for _, seg := range u.Segments(off, ln) {
					scatter = append(scatter, u.Space.Bytes(seg.Addr, seg.Len))
				}
				trk.add(ln)
				ln := ln
				w.CopyOut(m.Off(), ln, scatter, func(err error) {
					if err != nil && dmaErr == nil {
						dmaErr = err
					}
					trk.DMADone(ln)
				})
			} else {
				// Fallback: read outboard data with the CPU.
				s.CopyReads++
				s.ctrCopyReads.Inc()
				didCopy = true
				ctx.CopyToUIO(u, off, w.ReadFn(m.Off(), ln), n)
			}
		case mbuf.TUIO:
			panic("socket: M_UIO mbuf in receive buffer")
		}
		off += ln
	}
	if didCopy && s.crit != nil {
		s.rCur = s.critEv(s.rCur, obs.CauseCPUCopy, "read_copy",
			int(s.Conn.RemotePort()), 0, n)
	}
	if sawDMA {
		// The last SDMA is flagged to interrupt so the process can be
		// rescheduled (Section 2.2).
		ctx.Charge(s.K.Mach.InterruptCost, kern.CatIntr)
		if trk.pending > 0 {
			s.ctrDMAWaits.Inc()
		}
		trk.wait(ctx.P)
		if s.crit != nil {
			// The read's outboard ranges landed in the user buffer by SDMA.
			s.rCur = s.critEv(s.rCur, obs.CauseDMA, "read_dma",
				int(s.Conn.RemotePort()), 0, n)
		}
		for _, r := range pinned {
			s.VM.UnpinUIO(ctx, u, r.Addr, r.Len)
		}
	}
	return dmaErr
}

// WriteAll writes buf fully and returns an error only on connection
// failure.
func (s *Socket) WriteAll(p *sim.Proc, buf mem.Buf) error {
	_, err := s.Write(p, buf)
	return err
}

// Close closes the stream (half-close of the send side; full teardown
// proceeds via FIN exchange).
func (s *Socket) Close(p *sim.Proc) {
	s.Conn.Close(s.K.TaskCtx(p, s.Task).In("socket").WithFlow(int(s.Conn.LocalPort())))
}

// Dial establishes a TCP connection and wraps it in a socket.
func Dial(p *sim.Proc, k *kern.Kernel, vm *kern.VM, task *kern.Task, stk *tcpip.Stack,
	raddr wire.Addr, rport uint16, cfg Config) (*Socket, error) {
	ctx := k.TaskCtx(p, task).In("socket")
	conn, err := stk.Connect(ctx, raddr, rport)
	if err != nil {
		return nil, err
	}
	return NewSocket(k, vm, task, conn, cfg), nil
}

// Accept waits for an inbound connection on l and wraps it.
func Accept(p *sim.Proc, k *kern.Kernel, vm *kern.VM, task *kern.Task,
	l *tcpip.TCPListener, cfg Config) *Socket {
	conn := l.Accept(p)
	return NewSocket(k, vm, task, conn, cfg)
}
