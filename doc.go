// Package repro is a from-scratch reproduction of "Software Support for
// Outboard Buffering and Checksumming" (Kleinpaste, Steenkiste, Zill —
// SIGCOMM '95) as a deterministic discrete-event simulation in Go.
//
// The library rebuilds everything the paper depends on: a BSD-style
// protocol stack (mbufs, sockets, TCP/UDP/IP) with both the original and
// the single-copy data paths, a functional model of the Gigabit Nectar CAB
// adaptor (outboard network memory, SDMA/MDMA engines, transmit and
// receive checksum engines, auto-DMA, logical channels), the HIPPI media,
// a simulated Unix kernel with CPU scheduling and time accounting, and the
// ttcp + util measurement methodology. Real bytes flow end to end and real
// Internet checksums are computed; only time is virtual, charged from a
// cost model calibrated with the constants the paper publishes.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured comparison, and bench_test.go for the harnesses
// that regenerate each table and figure.
//
// Entry points:
//
//   - internal/core: assemble testbeds of simulated hosts.
//   - internal/exp: regenerate the paper's figures and tables.
//   - cmd/ttcp, cmd/experiments, cmd/taxonomy: command-line tools.
//   - examples/: runnable scenarios (quickstart, fileserver,
//     mixeddevices, retransmit).
package repro
